//! Controlled synchronisation primitives.
//!
//! Drop-in shims for `std::sync::Mutex`, `Condvar`, `mpsc` channels and
//! `std::thread` spawning. On an **uncontrolled** thread (no exploration
//! in progress) every call delegates directly to the wrapped `std` type,
//! so behaviour — including poisoning recovery via
//! `unwrap_or_else(PoisonError::into_inner)` call sites — is unchanged.
//! On a **controlled** thread (spawned inside [`crate::explore`]) every
//! operation becomes a scheduling point: the thread publishes the op and
//! blocks until the model checker grants it, which is what lets the
//! checker enumerate interleavings.
//!
//! The real `std` primitive still backs every shim (the real mutex is
//! locked after the virtual grant, payloads travel through the real
//! channel), so data access is genuinely exclusive and `Deref` works
//! unchanged; the virtual layer only decides *order*.

use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::sync::{LockResult, PoisonError};

use crate::sched::{
    self, chan_add_sender, current_ctx, name_mutex, resource_id, yield_cv_wait, yield_op, ExecCtx,
    Op, ResourceKind,
};

/// Mutex shim: `std::sync::Mutex` plus a lazily-registered checker slot.
pub struct Mutex<T: ?Sized> {
    slot: AtomicU64,
    inner: std::sync::Mutex<T>,
}

/// Guard shim: wraps the real guard; releasing it on a controlled thread
/// is a scheduling point.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Checker resource id when acquired on a controlled thread.
    ctl: Option<usize>,
}

impl<T> Mutex<T> {
    /// Create a new mutex (uncontended, unregistered).
    pub const fn new(value: T) -> Self {
        Mutex { slot: AtomicU64::new(0), inner: std::sync::Mutex::new(value) }
    }
}

impl<T: ?Sized> Mutex<T> {
    fn rid(&self, ctx: &ExecCtx) -> usize {
        resource_id(ctx, &self.slot, ResourceKind::Mutex, "")
    }

    /// Acquire the mutex. Controlled threads never observe poisoning
    /// (panics abort the whole execution), so the result is always `Ok`
    /// there; uncontrolled threads get exact `std` semantics.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(ctx) = current_ctx() {
            let rid = self.rid(&ctx);
            yield_op(&ctx, Op::MutexLock(rid));
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            Ok(MutexGuard { lock: self, inner: Some(inner), ctl: Some(rid) })
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard { lock: self, inner: Some(g), ctl: None }),
                Err(pe) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(pe.into_inner()),
                    ctl: None,
                })),
            }
        }
    }

    /// Whether the underlying mutex is poisoned (std passthrough).
    pub fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    /// Attach a stable debug name used in counterexample schedules.
    /// No-op outside exploration.
    pub fn name_hint(&self, name: &'static str) {
        if let Some(ctx) = current_ctx() {
            let rid = resource_id(&ctx, &self.slot, ResourceKind::Mutex, name);
            name_mutex(&ctx, rid, name);
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            None => sched::die("deref of released MutexGuard".into()),
        }
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => sched::die("deref of released MutexGuard".into()),
        }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then the virtual one: whoever the
        // scheduler grants next will find the real mutex free.
        self.inner.take();
        if let Some(rid) = self.ctl.take() {
            if let Some(ctx) = current_ctx() {
                yield_op(&ctx, Op::MutexUnlock(rid));
            }
        }
    }
}

/// Result of a `wait_timeout`: mirrors `std::sync::WaitTimeoutResult`
/// (which has no public constructor, hence the local type).
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notify.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condvar shim. Under exploration a `wait` atomically releases the
/// paired mutex and parks in the scheduler; `wait_timeout` additionally
/// marks the thread as *stall-escapable* — when every thread is blocked
/// the scheduler wakes one timed waiter as a timeout instead of
/// reporting deadlock, mirroring how a real timeout breaks a stall.
pub struct Condvar {
    slot: AtomicU64,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar { slot: AtomicU64::new(0), inner: std::sync::Condvar::new() }
    }

    fn rid(&self, ctx: &ExecCtx) -> usize {
        resource_id(ctx, &self.slot, ResourceKind::Condvar, "")
    }

    /// Block until notified; the guard's mutex is released atomically and
    /// reacquired before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (g, _) = self.wait_impl(guard, false);
        Ok(g)
    }

    /// Block until notified or (modelled) timeout. Under exploration the
    /// duration is ignored: the timeout fires exactly when the system
    /// would otherwise stall, which is the schedule-relevant abstraction.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        if guard.ctl.is_some() {
            let (g, timed_out) = self.wait_impl(guard, true);
            Ok((g, WaitTimeoutResult(timed_out)))
        } else {
            let lock = guard.lock;
            let mut guard = guard;
            let inner = match guard.inner.take() {
                Some(g) => g,
                None => sched::die("wait_timeout on released guard".into()),
            };
            std::mem::forget(guard);
            match self.inner.wait_timeout(inner, dur) {
                Ok((g, t)) => Ok((
                    MutexGuard { lock, inner: Some(g), ctl: None },
                    WaitTimeoutResult(t.timed_out()),
                )),
                Err(pe) => {
                    let (g, t) = pe.into_inner();
                    Err(PoisonError::new((
                        MutexGuard { lock, inner: Some(g), ctl: None },
                        WaitTimeoutResult(t.timed_out()),
                    )))
                }
            }
        }
    }

    fn wait_impl<'a, T>(&self, guard: MutexGuard<'a, T>, timed: bool) -> (MutexGuard<'a, T>, bool) {
        let lock = guard.lock;
        let mut guard = guard;
        match guard.ctl.take() {
            Some(rid_m) => {
                let ctx = match current_ctx() {
                    Some(c) => c,
                    None => sched::die("controlled guard on uncontrolled thread".into()),
                };
                let cv = self.rid(&ctx);
                // Drop the real guard without running the shim Drop (the
                // virtual release happens inside yield_cv_wait).
                guard.inner.take();
                std::mem::forget(guard);
                let info = yield_cv_wait(&ctx, cv, rid_m, timed);
                let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                (MutexGuard { lock, inner: Some(inner), ctl: Some(rid_m) }, info.timed_out)
            }
            None => {
                let inner = match guard.inner.take() {
                    Some(g) => g,
                    None => sched::die("wait on released guard".into()),
                };
                std::mem::forget(guard);
                let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
                (MutexGuard { lock, inner: Some(inner), ctl: None }, false)
            }
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        if let Some(ctx) = current_ctx() {
            let rid = self.rid(&ctx);
            yield_op(&ctx, Op::CvNotifyOne(rid));
        }
        self.inner.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        if let Some(ctx) = current_ctx() {
            let rid = self.rid(&ctx);
            yield_op(&ctx, Op::CvNotifyAll(rid));
        }
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// mpsc channel shim. Payloads travel through a real
/// `std::sync::mpsc::channel`; the checker only models *when* a `recv`
/// may proceed (queue non-empty, or disconnected).
pub mod mpsc {
    use super::*;
    pub use std::sync::mpsc::{RecvError, SendError};

    struct ChanCtl {
        slot: AtomicU64,
    }

    /// Sending half (clonable, like `std::sync::mpsc::Sender`).
    pub struct Sender<T> {
        inner: Option<std::sync::mpsc::Sender<T>>,
        ctl: Arc<ChanCtl>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: std::sync::mpsc::Receiver<T>,
        ctl: Arc<ChanCtl>,
    }

    /// Create an unbounded channel (controlled when used from a
    /// controlled thread, plain std otherwise).
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = std::sync::mpsc::channel();
        let ctl = Arc::new(ChanCtl { slot: AtomicU64::new(0) });
        (Sender { inner: Some(tx), ctl: ctl.clone() }, Receiver { inner: rx, ctl })
    }

    fn rid(ctl: &ChanCtl, ctx: &ExecCtx) -> usize {
        resource_id(ctx, &ctl.slot, ResourceKind::Channel, "")
    }

    impl<T> Sender<T> {
        /// Send a value; errors when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if let Some(ctx) = current_ctx() {
                let r = rid(&self.ctl, &ctx);
                yield_op(&ctx, Op::ChanSend(r));
            }
            match &self.inner {
                Some(tx) => tx.send(value),
                None => Err(SendError(value)),
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            if let Some(ctx) = current_ctx() {
                let r = rid(&self.ctl, &ctx);
                chan_add_sender(&ctx, r);
            }
            Sender { inner: self.inner.clone(), ctl: self.ctl.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if let Some(ctx) = current_ctx() {
                let r = rid(&self.ctl, &ctx);
                // Drop the real sender *before* the scheduling point so a
                // receiver granted "disconnected" observes it for real.
                self.inner.take();
                yield_op(&ctx, Op::ChanDropSender(r));
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value or disconnection.
        pub fn recv(&self) -> Result<T, RecvError> {
            if let Some(ctx) = current_ctx() {
                let r = rid(&self.ctl, &ctx);
                let info = yield_op(&ctx, Op::ChanRecv(r));
                if info.disconnected {
                    return Err(RecvError);
                }
                // The virtual grant said a message is queued; execution is
                // serialised, so the real queue agrees.
                match self.inner.try_recv() {
                    Ok(v) => Ok(v),
                    Err(_) => sched::die("channel state diverged from model".into()),
                }
            } else {
                self.inner.recv()
            }
        }

        /// Non-blocking receive (std passthrough; uncontrolled use only).
        pub fn try_recv(&self) -> Result<T, std::sync::mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Blocking iterator over received values, ending at
        /// disconnection (mirrors `std::sync::mpsc::Receiver::iter`).
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }
}

/// Thread shim: spawning from a controlled thread creates another
/// controlled thread; joins become scheduling points.
pub mod thread {
    use super::*;
    use crate::sched::{finish_thread, register_thread, thread_exited, wait_until_started};
    use std::sync::Mutex as StdMutex;

    enum Imp<T> {
        Std(std::thread::JoinHandle<T>),
        Ctl {
            tid: usize,
            real: Option<std::thread::JoinHandle<()>>,
            slot: Arc<StdMutex<Option<std::thread::Result<T>>>>,
        },
    }

    /// Join handle shim (std or controlled).
    pub struct JoinHandle<T> {
        imp: Imp<T>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and collect its result.
        pub fn join(self) -> std::thread::Result<T> {
            match self.imp {
                Imp::Std(h) => h.join(),
                Imp::Ctl { tid, real, slot } => {
                    if let Some(ctx) = current_ctx() {
                        if !std::thread::panicking() {
                            yield_op(&ctx, Op::Join(tid));
                        }
                    }
                    if let Some(h) = real {
                        let _ = h.join();
                    }
                    let taken = slot.lock().unwrap_or_else(PoisonError::into_inner).take();
                    match taken {
                        Some(r) => r,
                        None => sched::die(format!("joined thread t{tid} left no result")),
                    }
                }
            }
        }
    }

    /// Builder shim mirroring `std::thread::Builder`.
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Fresh builder with no name.
        pub fn new() -> Self {
            Builder { name: None }
        }

        /// Name the thread (shows up in counterexample schedules).
        #[must_use]
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawn, returning io::Result like std.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if let Some(ctx) = current_ctx() {
                Ok(spawn_controlled(&ctx, self.name, f))
            } else {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(|h| JoinHandle { imp: Imp::Std(h) })
            }
        }
    }

    /// Spawn an unnamed thread (panics on spawn failure, like std).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match Builder::new().spawn(f) {
            Ok(h) => h,
            Err(e) => sched::die(format!("failed to spawn thread: {e}")),
        }
    }

    fn spawn_controlled<F, T>(ctx: &ExecCtx, name: Option<String>, f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let core = &ctx.core;
        let tid = register_thread(core, name.clone().unwrap_or_default());
        let slot: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));
        let (c2, s2) = (core.clone(), slot.clone());
        let mut builder = std::thread::Builder::new();
        if let Some(n) = name {
            builder = builder.name(n);
        }
        let spawned = builder.spawn(move || {
            sched::set_ctx(Some(ExecCtx { core: c2.clone(), tid }));
            if wait_until_started(&c2, tid) {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                let panicked = r.is_err();
                *s2.lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                finish_thread(&c2, tid, panicked);
            } else {
                // Execution aborted before this thread ever ran; leave an
                // abort payload so a join during unwinding finds a result.
                *s2.lock().unwrap_or_else(PoisonError::into_inner) =
                    Some(Err(Box::new(sched::AbortExecution)));
            }
            thread_exited(&c2);
        });
        let real = match spawned {
            Ok(h) => h,
            Err(e) => sched::die(format!("failed to spawn controlled thread: {e}")),
        };
        // Scheduling point: the child may run before the parent continues.
        yield_op(ctx, Op::Spawn(tid));
        JoinHandle { imp: Imp::Ctl { tid, real: Some(real), slot } }
    }
}
