//! Exploration results: reports and violations.

use crate::schedule::Schedule;

/// What kind of property failure the checker observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// Every live thread is blocked and no timed wait can escape.
    Deadlock,
    /// A controlled thread panicked (failed assertion, product panic).
    Panic,
    /// The per-execution step budget was exceeded (livelock suspicion).
    StepBudget,
    /// Replay diverged from the recorded schedule — the model closure is
    /// not deterministic, or the checker has a bug.
    Divergence,
}

impl ViolationKind {
    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::Panic => "panic",
            ViolationKind::StepBudget => "step_budget",
            ViolationKind::Divergence => "divergence",
        }
    }
}

/// A property violation with its replayable counterexample.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Failure class.
    pub kind: ViolationKind,
    /// Human-readable description (panic message, blocked-thread dump).
    pub message: String,
    /// The decision log that reproduces the failure via [`crate::replay`].
    pub schedule: Schedule,
}

/// Result of one exploration run ([`crate::explore`] and friends).
#[derive(Debug, Default)]
pub struct Report {
    /// Executions that ran to completion (every thread finished).
    pub schedules: u64,
    /// Branches cut by sleep-set pruning before completing.
    pub pruned: u64,
    /// True when the `max_schedules` cap stopped exploration early.
    pub truncated: bool,
    /// Longest execution observed, in granted operations.
    pub max_steps_seen: usize,
    /// The first violation found, if any (exploration stops on it).
    pub violation: Option<Violation>,
}

impl Report {
    /// True when exploration finished without finding a violation.
    pub fn ok(&self) -> bool {
        self.violation.is_none()
    }

    /// Total executions attempted (complete + pruned).
    pub fn executions(&self) -> u64 {
        self.schedules + self.pruned
    }
}
