//! astro-check: a deterministic bounded model checker for the serving
//! stack's concurrency protocols (loom/shuttle-style).
//!
//! # How it works
//!
//! A *model* is a closure that builds some shared state and spawns
//! threads through the [`sync`] shim ([`sync::Mutex`], [`sync::Condvar`],
//! [`sync::mpsc`], [`sync::thread`]). Inside [`explore`] those threads
//! are real OS threads, but a token-passing scheduler serialises them:
//! every instrumented operation publishes itself and blocks until the
//! scheduler grants it, so the scheduler's choices are the *only* source
//! of nondeterminism. Recording the choices yields a replayable
//! schedule; enumerating them with stateless DFS yields exhaustive
//! exploration of all interleavings, bounded by:
//!
//! * a **preemption bound** — at most N involuntary context switches per
//!   execution (empirically, almost all concurrency bugs need ≤ 2);
//! * **sleep-set pruning** — a thread whose pending op was already
//!   explored at a state stays asleep until a *dependent* op (same
//!   resource) executes, cutting commuting permutations;
//! * a **step budget** per execution (livelock detection).
//!
//! [`explore_random`] trades exhaustiveness for depth: a seeded random
//! walk over schedules, for state spaces too big to enumerate.
//!
//! # Violations and counterexamples
//!
//! Deadlock (every thread blocked), a panicked thread (failed harness
//! assertion or product panic), or step-budget exhaustion stop the run
//! and produce a [`Violation`] carrying the full [`Schedule`] — a JSONL
//! decision log that [`replay`] re-executes deterministically.
//!
//! # Integration
//!
//! Product code uses `astro_telemetry::sync`, which re-exports `std`
//! types in normal builds (zero overhead) and these shims under
//! `--cfg astro_check`; model-checked harnesses for the real gateway
//! queue, pool quiescence, prefix-cache and trace-ring protocols live in
//! their owning crates behind that cfg. The protocol *models* in
//! [`models`] (including seeded mutants proving the checker detects
//! dropped notifies, wait-`if`s and skipped drains) use the shim
//! directly and run in every build.
//!
//! Not supported inside a model: `std::sync` primitives (invisible to
//! the scheduler), time-based logic (`wait_timeout` durations are
//! abstracted to "fires when the system would otherwise stall"), and
//! sharing shim objects between controlled and uncontrolled threads.

pub mod models;
mod report;
mod sched;
pub mod schedule;
pub mod sync;

pub use report::{Report, Violation, ViolationKind};
pub use schedule::Schedule;

pub(crate) use sched::die as sched_die;

use sched::{Abort, CoreShared, Level, Mode, RunCfg};
use std::sync::{Arc, OnceLock};

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct CheckConfig {
    /// Max involuntary context switches per execution (default 2).
    pub preemption_bound: usize,
    /// Stop after this many executions (default 200 000).
    pub max_schedules: u64,
    /// Per-execution granted-op budget (default 20 000).
    pub max_steps: usize,
    /// Enable sleep-set pruning (default true).
    pub sleep_sets: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            preemption_bound: 2,
            max_schedules: 200_000,
            max_steps: 20_000,
            sleep_sets: true,
        }
    }
}

/// Install the process-wide panic hook that converts a controlled
/// thread's panic into a recorded violation (and silences abort
/// unwinds). Chains to the previous hook for uncontrolled threads.
fn install_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<sched::AbortExecution>() {
                return; // scheduled teardown, not a failure
            }
            if let Some(ctx) = sched::current_ctx() {
                let msg = if let Some(s) = info.payload().downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = info.payload().downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                let at = info
                    .location()
                    .map(|l| format!(" at {}:{}", l.file(), l.line()))
                    .unwrap_or_default();
                sched::record_panic_violation(&ctx, format!("panic{at}: {msg}"));
                return;
            }
            prev(info);
        }));
    });
}

enum Outcome {
    Explored,
    Pruned,
    Violation(Violation),
}

struct Explorer {
    cfg: CheckConfig,
    levels: Vec<Level>,
    report: Report,
}

impl Explorer {
    fn new(cfg: CheckConfig) -> Self {
        Explorer { cfg, levels: Vec::new(), report: Report::default() }
    }

    /// Run the model once, replaying `self.levels` as a prefix; returns
    /// the outcome and leaves the (possibly extended) decision stack in
    /// `self.levels`.
    fn run_once(&mut self, f: &Arc<dyn Fn() + Send + Sync>, mode: Mode) -> Outcome {
        install_hook();
        let run_cfg = RunCfg {
            preemption_bound: self.cfg.preemption_bound,
            max_steps: self.cfg.max_steps,
            sleep_sets: self.cfg.sleep_sets && matches!(mode, Mode::Dfs),
            mode,
        };
        let core = Arc::new(CoreShared::new(run_cfg, std::mem::take(&mut self.levels)));
        let tid0 = sched::register_root(&core);
        let (f2, c2) = (f.clone(), core.clone());
        let spawned = std::thread::Builder::new().name("astro-check-main".into()).spawn(move || {
            sched::set_ctx(Some(sched::ExecCtx { core: c2.clone(), tid: tid0 }));
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f2()));
            sched::finish_thread(&c2, tid0, r.is_err());
            sched::thread_exited(&c2);
        });
        let handle = match spawned {
            Ok(h) => h,
            Err(e) => sched::die(format!("failed to spawn model thread: {e}")),
        };
        let view = sched::drive_to_end(&core);
        let _ = handle.join();
        self.levels = view.levels;
        self.report.max_steps_seen = self.report.max_steps_seen.max(view.step_count);
        match view.abort {
            None => Outcome::Explored,
            Some(Abort::Pruned) => Outcome::Pruned,
            Some(Abort::Divergence(msg)) => Outcome::Violation(Violation {
                kind: ViolationKind::Divergence,
                message: msg,
                schedule: Schedule::from_steps(view.steps),
            }),
            Some(Abort::Violation(mut v)) => {
                v.schedule = Schedule::from_steps(view.steps);
                Outcome::Violation(v)
            }
        }
    }

    /// Backtrack: flip the deepest level with untried alternatives.
    /// Returns false when the tree is exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(mut lvl) = self.levels.pop() {
            if !lvl.untried.is_empty() {
                lvl.slept.push(lvl.chosen);
                lvl.chosen = lvl.untried.remove(0);
                self.levels.push(lvl);
                return true;
            }
        }
        false
    }
}

/// Exhaustively explore every interleaving of `model` up to the
/// configured preemption bound. Stops at the first violation.
///
/// The model closure is executed once per schedule and must be
/// deterministic apart from thread interleaving (no wall-clock logic, no
/// global mutable state shared across executions).
pub fn explore<F>(cfg: &CheckConfig, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut ex = Explorer::new(*cfg);
    loop {
        match ex.run_once(&f, Mode::Dfs) {
            Outcome::Violation(v) => {
                ex.report.violation = Some(v);
                break;
            }
            Outcome::Explored => ex.report.schedules += 1,
            Outcome::Pruned => ex.report.pruned += 1,
        }
        if ex.report.executions() >= ex.cfg.max_schedules {
            ex.report.truncated = true;
            break;
        }
        if !ex.backtrack() {
            break;
        }
    }
    ex.report
}

/// Seeded random-walk exploration: `iterations` independent executions
/// with uniformly random scheduling choices (still respecting the
/// preemption bound). Deterministic for a fixed seed. Stops at the first
/// violation.
pub fn explore_random<F>(cfg: &CheckConfig, seed: u64, iterations: u64, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut ex = Explorer::new(*cfg);
    for i in 0..iterations {
        ex.levels.clear();
        let rng = astro_prng::Rng::seed_from(seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
        match ex.run_once(&f, Mode::Random(rng)) {
            Outcome::Violation(v) => {
                ex.report.violation = Some(v);
                break;
            }
            Outcome::Explored => ex.report.schedules += 1,
            Outcome::Pruned => ex.report.pruned += 1,
        }
    }
    ex.report
}

/// Re-execute a recorded counterexample schedule deterministically.
/// The decision prefix is forced; past the end of the schedule the
/// scheduler continues with default (first-eligible) choices.
pub fn replay<F>(cfg: &CheckConfig, schedule: &Schedule, model: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut ex = Explorer::new(*cfg);
    ex.levels = schedule
        .decisions()
        .into_iter()
        .map(|t| Level { chosen: t, untried: Vec::new(), slept: Vec::new() })
        .collect();
    match ex.run_once(&f, Mode::Dfs) {
        Outcome::Violation(v) => ex.report.violation = Some(v),
        Outcome::Explored => ex.report.schedules = 1,
        Outcome::Pruned => ex.report.pruned = 1,
    }
    ex.report
}

/// Write a counterexample schedule (if any) to `path` as JSONL; returns
/// whether a file was written.
pub fn dump_counterexample(report: &Report, path: &std::path::Path) -> std::io::Result<bool> {
    match &report.violation {
        Some(v) => {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            let header = format!(
                "{{\"violation\":\"{}\",\"message\":\"{}\"}}\n",
                v.kind.label(),
                v.message.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n"),
            );
            std::fs::write(path, format!("{header}{}", v.schedule.to_jsonl()))?;
            Ok(true)
        }
        None => Ok(false),
    }
}
