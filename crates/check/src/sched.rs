//! Token-passing scheduler core for the bounded model checker.
//!
//! Real OS threads are serialised so that **exactly one controlled thread
//! runs at a time**: every instrumented operation (`crate::sync`) calls
//! [`yield_op`], which publishes the thread's pending operation, invokes
//! the scheduler to pick the next thread, and blocks until this thread is
//! granted the token again. Because the scheduler's choices are the only
//! source of nondeterminism, recording them yields a replayable schedule
//! and enumerating them yields exhaustive exploration (up to a preemption
//! bound, with sleep-set pruning).
//!
//! The design follows loom/shuttle: a persistent decision stack
//! ([`Level`]) drives stateless DFS — each execution replays the stack
//! prefix, extends it with first-choice decisions, and backtracking flips
//! the deepest level that still has untried alternatives.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

use crate::report::{Violation, ViolationKind};
use crate::schedule::StepRec;

/// Panic payload used to unwind controlled threads when an execution is
/// torn down (violation found, branch pruned, or replay divergence). The
/// panic hook recognises it and stays silent; user-level `catch_unwind`
/// may swallow one, but every subsequent instrumented operation re-checks
/// the abort flag and throws it again.
pub(crate) struct AbortExecution;

/// Abort panic that cannot be confused with user payloads.
pub(crate) fn abort_unwind() -> ! {
    std::panic::panic_any(AbortExecution)
}

/// Internal invariant failure inside the checker itself.
pub(crate) fn die(msg: String) -> ! {
    std::panic::panic_any(format!("astro-check internal error: {msg}"))
}

/// One instrumented operation a controlled thread may be about to
/// perform. Resource indices refer to [`Core::resources`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Op {
    /// Acquire a mutex.
    MutexLock(usize),
    /// Release a mutex.
    MutexUnlock(usize),
    /// Reacquire the paired mutex after a condvar wake-up.
    CvReacquire {
        /// Mutex to reacquire.
        mutex: usize,
    },
    /// Wake one waiter.
    CvNotifyOne(usize),
    /// Wake all waiters.
    CvNotifyAll(usize),
    /// Enqueue one message.
    ChanSend(usize),
    /// Dequeue one message (blocking until available or disconnected).
    ChanRecv(usize),
    /// Drop one sender handle (disconnect accounting).
    ChanDropSender(usize),
    /// First scheduling of a freshly spawned thread.
    Start,
    /// Parent-side scheduling point right after registering a child.
    Spawn(usize),
    /// Block until the target thread finishes.
    Join(usize),
}

/// Scheduling state of one controlled thread.
#[derive(Clone, Debug)]
pub(crate) enum Status {
    /// Holds the token and is executing user code.
    Running,
    /// Published a pending op and is waiting to be granted.
    Ready(Op),
    /// Parked on a condvar (released `mutex` atomically at wait).
    WaitingCv {
        /// The condvar waited on.
        cv: usize,
        /// The mutex to reacquire on wake-up.
        mutex: usize,
        /// Whether this is a `wait_timeout` (eligible for stall escape).
        timed: bool,
    },
    /// Returned (or unwound); joinable.
    Finished,
}

/// Outcome information delivered to the thread when its op is granted.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct GrantInfo {
    /// For `ChanRecv`: true when the channel was disconnected-and-empty.
    pub disconnected: bool,
    /// For `CvReacquire`: true when the wake-up was the stall-escape
    /// timeout rather than a notify.
    pub timed_out: bool,
}

/// Per-thread record in the core.
pub(crate) struct TState {
    /// Scheduling status.
    pub status: Status,
    /// Debug name (schedule readability).
    pub name: String,
    /// Grant outcome for the most recent operation.
    pub grant: GrantInfo,
}

impl TState {
    fn new(name: String, status: Status) -> Self {
        TState { status, name, grant: GrantInfo::default() }
    }
}

/// Kind tag used when registering a resource lazily on first use.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ResourceKind {
    /// A `sync::Mutex`.
    Mutex,
    /// A `sync::Condvar`.
    Condvar,
    /// A `sync::mpsc` channel.
    Channel,
}

/// Modelled state of one synchronisation resource.
pub(crate) enum Resource {
    /// Mutex: which thread virtually holds it.
    Mutex {
        /// Holder thread id, if locked.
        holder: Option<usize>,
        /// Debug name (set by `lock_ranked`), or "".
        name: &'static str,
    },
    /// Condvar: parked threads in wait order.
    Condvar {
        /// Waiting thread ids, FIFO.
        waiters: Vec<usize>,
    },
    /// mpsc channel: message count and sender accounting (payloads live
    /// in the real `std::sync::mpsc` queue; ordering agrees because the
    /// execution is serialised).
    Channel {
        /// Number of sent-but-unreceived messages.
        len: usize,
        /// Live sender handles.
        senders: usize,
    },
}

impl Resource {
    fn describe(&self, id: usize) -> String {
        match self {
            Resource::Mutex { name, .. } if !name.is_empty() => format!("m{id}:{name}"),
            Resource::Mutex { .. } => format!("m{id}"),
            Resource::Condvar { .. } => format!("cv{id}"),
            Resource::Channel { .. } => format!("ch{id}"),
        }
    }
}

/// One decision level of the persistent DFS stack.
#[derive(Clone, Debug)]
pub(crate) struct Level {
    /// Thread granted at this level in the current execution.
    pub chosen: usize,
    /// Alternatives not yet explored (flipped into `chosen` on backtrack).
    pub untried: Vec<usize>,
    /// Alternatives fully explored at this level (sleep-set seed).
    pub slept: Vec<usize>,
}

/// How the scheduler picks among eligible threads at a fresh level.
pub(crate) enum Mode {
    /// Depth-first enumeration (records untried alternatives).
    Dfs,
    /// Seeded random walk (no alternatives recorded).
    Random(astro_prng::Rng),
}

/// Why the execution stopped early.
pub(crate) enum Abort {
    /// A property violation — reported with its schedule.
    Violation(Violation),
    /// Sleep-set pruning proved this branch redundant.
    Pruned,
    /// Replay diverged from the recorded decision (checker bug or an
    /// impure model closure).
    Divergence(String),
}

/// Execution limits and strategy for one [`Core`].
pub(crate) struct RunCfg {
    /// Max preemptive context switches per execution.
    pub preemption_bound: usize,
    /// Max granted operations per execution (livelock bound).
    pub max_steps: usize,
    /// Whether sleep-set pruning is enabled.
    pub sleep_sets: bool,
    /// Choice strategy.
    pub mode: Mode,
}

/// The shared scheduler state: one per execution.
pub(crate) struct Core {
    /// Execution configuration.
    pub cfg: RunCfg,
    /// All controlled threads, indexed by tid.
    pub threads: Vec<TState>,
    /// All registered resources.
    pub resources: Vec<Resource>,
    /// Persistent decision stack (replayed prefix + fresh extension).
    pub levels: Vec<Level>,
    /// Current decision depth.
    pub depth: usize,
    /// Granted-op log for counterexample schedules.
    pub steps: Vec<StepRec>,
    /// Total grants this execution.
    pub step_count: usize,
    /// Preemptive switches so far.
    pub preemptions: usize,
    /// Most recently granted thread.
    pub last: usize,
    /// Current sleep set (thread ids whose pending op is already covered).
    pub cur_sleep: Vec<usize>,
    /// Early-stop reason, if any.
    pub abort: Option<Abort>,
    /// True when every thread finished normally.
    pub complete: bool,
    /// Controlled threads registered.
    pub live: usize,
    /// Controlled real threads that have returned.
    pub exited: usize,
    /// Unique execution epoch for lazy resource registration.
    pub epoch: u64,
}

/// Core plus its wake-up condvar; shared via `Arc` by every controlled
/// thread and the driver.
pub(crate) struct CoreShared {
    mu: StdMutex<Core>,
    cv: StdCondvar,
}

/// Monotonic epoch source so resources registered in a previous execution
/// are re-registered rather than aliased.
static EPOCH: AtomicU64 = AtomicU64::new(1);

impl CoreShared {
    pub(crate) fn new(cfg: RunCfg, levels: Vec<Level>) -> Self {
        let epoch = EPOCH.fetch_add(1, Ordering::Relaxed);
        CoreShared {
            mu: StdMutex::new(Core {
                cfg,
                threads: Vec::new(),
                resources: Vec::new(),
                levels,
                depth: 0,
                steps: Vec::new(),
                step_count: 0,
                preemptions: 0,
                last: 0,
                cur_sleep: Vec::new(),
                abort: None,
                complete: false,
                live: 0,
                exited: 0,
                epoch,
            }),
            cv: StdCondvar::new(),
        }
    }

    pub(crate) fn lock(&self) -> StdMutexGuard<'_, Core> {
        self.mu.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn wait<'a>(&self, g: StdMutexGuard<'a, Core>) -> StdMutexGuard<'a, Core> {
        self.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(crate) fn notify_all(&self) {
        self.cv.notify_all();
    }
}

/// Handle a controlled thread keeps in thread-local storage.
#[derive(Clone)]
pub(crate) struct ExecCtx {
    /// The execution this thread belongs to.
    pub core: Arc<CoreShared>,
    /// This thread's id.
    pub tid: usize,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<ExecCtx>> = const { std::cell::RefCell::new(None) };
}

/// Install `ctx` as the current thread's execution context.
pub(crate) fn set_ctx(ctx: Option<ExecCtx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

/// The current thread's execution context, if it is controlled.
pub(crate) fn current_ctx() -> Option<ExecCtx> {
    CTX.try_with(|c| c.borrow().clone()).ok().flatten()
}

/// Lazily register a resource: `slot` caches `(epoch, id+1)` packed into
/// a u64 so an object surviving across executions re-registers cleanly.
pub(crate) fn resource_id(
    ctx: &ExecCtx,
    slot: &AtomicU64,
    kind: ResourceKind,
    name: &'static str,
) -> usize {
    let mut g = ctx.core.lock();
    let packed = slot.load(Ordering::Relaxed);
    let (ep, id1) = (packed >> 32, (packed & 0xffff_ffff) as usize);
    if ep == g.epoch && id1 != 0 {
        return id1 - 1;
    }
    let rid = g.resources.len();
    g.resources.push(match kind {
        ResourceKind::Mutex => Resource::Mutex { holder: None, name },
        ResourceKind::Condvar => Resource::Condvar { waiters: Vec::new() },
        ResourceKind::Channel => Resource::Channel { len: 0, senders: 1 },
    });
    slot.store((g.epoch << 32) | (rid as u64 + 1), Ordering::Relaxed);
    rid
}

/// Attach a debug name to an already-or-soon registered mutex.
pub(crate) fn name_mutex(ctx: &ExecCtx, rid: usize, name: &'static str) {
    let mut g = ctx.core.lock();
    if let Some(Resource::Mutex { name: n, .. }) = g.resources.get_mut(rid) {
        if n.is_empty() {
            *n = name;
        }
    }
}

/// Adjust channel sender count without a scheduling point (`Sender::clone`
/// commutes with everything except the final drop, which *is* an op).
pub(crate) fn chan_add_sender(ctx: &ExecCtx, rid: usize) {
    let mut g = ctx.core.lock();
    if let Some(Resource::Channel { senders, .. }) = g.resources.get_mut(rid) {
        *senders += 1;
    }
}

impl Core {
    fn mutex_holder_mut(&mut self, rid: usize) -> &mut Option<usize> {
        match self.resources.get_mut(rid) {
            Some(Resource::Mutex { holder, .. }) => holder,
            _ => die(format!("resource {rid} is not a mutex")),
        }
    }

    fn feasible(&self, op: Op) -> bool {
        match op {
            Op::MutexLock(m) | Op::CvReacquire { mutex: m } => {
                matches!(self.resources.get(m), Some(Resource::Mutex { holder: None, .. }))
            }
            Op::ChanRecv(c) => match self.resources.get(c) {
                Some(Resource::Channel { len, senders }) => *len > 0 || *senders == 0,
                _ => false,
            },
            Op::Join(t) => matches!(self.threads.get(t).map(|s| &s.status), Some(Status::Finished)),
            _ => true,
        }
    }

    /// Do the pending ops of two threads commute? Conservative: anything
    /// touching the same resource — or any thread-lifecycle op — is
    /// treated as dependent.
    fn dependent(a: Op, b: Op) -> bool {
        fn res(op: Op) -> Option<usize> {
            match op {
                Op::MutexLock(r)
                | Op::MutexUnlock(r)
                | Op::CvReacquire { mutex: r }
                | Op::CvNotifyOne(r)
                | Op::CvNotifyAll(r)
                | Op::ChanSend(r)
                | Op::ChanRecv(r)
                | Op::ChanDropSender(r) => Some(r),
                Op::Start | Op::Spawn(_) | Op::Join(_) => None,
            }
        }
        match (res(a), res(b)) {
            (Some(ra), Some(rb)) => {
                if ra == rb {
                    return true;
                }
                // A notify touches both the condvar and (via reacquire
                // hand-off) its paired mutex; treat notify as dependent
                // with reacquire on any mutex to stay conservative.
                matches!(
                    (a, b),
                    (Op::CvNotifyOne(_) | Op::CvNotifyAll(_), Op::CvReacquire { .. })
                        | (Op::CvReacquire { .. }, Op::CvNotifyOne(_) | Op::CvNotifyAll(_))
                )
            }
            _ => true,
        }
    }

    fn describe_op(&self, op: Op) -> (String, String) {
        let r = |rid: usize| {
            self.resources.get(rid).map(|x| x.describe(rid)).unwrap_or_else(|| format!("r{rid}"))
        };
        match op {
            Op::MutexLock(m) => ("lock".into(), r(m)),
            Op::MutexUnlock(m) => ("unlock".into(), r(m)),
            Op::CvReacquire { mutex } => ("reacquire_after_wait".into(), r(mutex)),
            Op::CvNotifyOne(c) => ("notify_one".into(), r(c)),
            Op::CvNotifyAll(c) => ("notify_all".into(), r(c)),
            Op::ChanSend(c) => ("send".into(), r(c)),
            Op::ChanRecv(c) => ("recv".into(), r(c)),
            Op::ChanDropSender(c) => ("drop_sender".into(), r(c)),
            Op::Start => ("start".into(), String::new()),
            Op::Spawn(t) => ("spawn".into(), format!("t{t}")),
            Op::Join(t) => ("join".into(), format!("t{t}")),
        }
    }

    fn describe_blocked(&self) -> String {
        let mut parts = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            let what = match &t.status {
                Status::Running => "running".to_string(),
                Status::Finished => continue,
                Status::WaitingCv { cv, mutex, .. } => {
                    format!("waiting on cv{cv} (mutex m{mutex})")
                }
                Status::Ready(op) => {
                    let (o, r) = self.describe_op(*op);
                    format!("blocked at {o} {r}")
                }
            };
            parts.push(format!("t{i}:{}: {what}", t.name));
        }
        parts.join("; ")
    }

    fn grant(&mut self, tid: usize, op: Op) {
        let mut info = GrantInfo::default();
        match op {
            Op::MutexLock(m) | Op::CvReacquire { mutex: m } => {
                *self.mutex_holder_mut(m) = Some(tid);
            }
            Op::MutexUnlock(m) => {
                *self.mutex_holder_mut(m) = None;
            }
            Op::CvNotifyOne(c) => {
                if let Some(w) = self.cv_pop_waiter(c) {
                    self.wake_waiter(w, false);
                }
            }
            Op::CvNotifyAll(c) => {
                while let Some(w) = self.cv_pop_waiter(c) {
                    self.wake_waiter(w, false);
                }
            }
            Op::ChanSend(c) => {
                if let Some(Resource::Channel { len, .. }) = self.resources.get_mut(c) {
                    *len += 1;
                }
            }
            Op::ChanRecv(c) => {
                if let Some(Resource::Channel { len, .. }) = self.resources.get_mut(c) {
                    if *len > 0 {
                        *len -= 1;
                    } else {
                        info.disconnected = true;
                    }
                }
            }
            Op::ChanDropSender(c) => {
                if let Some(Resource::Channel { senders, .. }) = self.resources.get_mut(c) {
                    *senders = senders.saturating_sub(1);
                }
            }
            Op::Start | Op::Spawn(_) | Op::Join(_) => {}
        }
        // A reacquire granted via the stall-escape carries its timeout flag
        // set by `wake_waiter`; preserve it for reacquires only.
        info.timed_out =
            matches!(op, Op::CvReacquire { .. }) && self.threads[tid].grant.timed_out;
        let (opname, resource) = self.describe_op(op);
        self.steps.push(StepRec {
            step: self.steps.len(),
            thread: tid,
            name: self.threads[tid].name.clone(),
            op: opname,
            resource,
        });
        self.threads[tid].grant = info;
        self.threads[tid].status = Status::Running;
        self.last = tid;
    }

    fn cv_pop_waiter(&mut self, c: usize) -> Option<usize> {
        match self.resources.get_mut(c) {
            Some(Resource::Condvar { waiters }) if !waiters.is_empty() => Some(waiters.remove(0)),
            _ => None,
        }
    }

    fn wake_waiter(&mut self, w: usize, timed_out: bool) {
        if let Status::WaitingCv { mutex, .. } = self.threads[w].status {
            self.threads[w].status = Status::Ready(Op::CvReacquire { mutex });
            self.threads[w].grant.timed_out = timed_out;
        }
    }

    /// The scheduler: called (with the core locked) by whichever thread
    /// just gave up the token. Picks and grants the next thread, or sets
    /// `complete` / `abort`.
    pub(crate) fn pick_next(&mut self) {
        loop {
            if self.abort.is_some() || self.complete {
                return;
            }
            let mut eligible: Vec<usize> = Vec::new();
            for (i, t) in self.threads.iter().enumerate() {
                if let Status::Ready(op) = t.status {
                    if self.feasible(op) {
                        eligible.push(i);
                    }
                }
            }
            if eligible.is_empty() {
                // Timed condvar waits are a deadlock escape: when nothing
                // else can run, wake the lowest-id timed waiter as a
                // timeout. Deterministic, so replay is stable.
                let timed = self
                    .threads
                    .iter()
                    .position(|t| matches!(t.status, Status::WaitingCv { timed: true, .. }));
                if let Some(w) = timed {
                    if let Status::WaitingCv { cv, .. } = self.threads[w].status {
                        if let Some(Resource::Condvar { waiters }) = self.resources.get_mut(cv) {
                            waiters.retain(|&x| x != w);
                        }
                    }
                    self.wake_waiter(w, true);
                    continue;
                }
                if self.threads.iter().all(|t| matches!(t.status, Status::Finished)) {
                    self.complete = true;
                    return;
                }
                self.abort = Some(Abort::Violation(Violation {
                    kind: ViolationKind::Deadlock,
                    message: format!("deadlock: {}", self.describe_blocked()),
                    schedule: crate::schedule::Schedule::default(),
                }));
                return;
            }

            let chosen: usize;
            if self.depth < self.levels.len() {
                chosen = self.levels[self.depth].chosen;
                if !eligible.contains(&chosen) {
                    self.abort = Some(Abort::Divergence(format!(
                        "replay divergence at depth {}: recorded thread t{chosen} is not \
                         eligible (model closure must be deterministic)",
                        self.depth
                    )));
                    return;
                }
            } else {
                let cont = self.last;
                let cont_ok = eligible.contains(&cont);
                let bound_hit = self.preemptions >= self.cfg.preemption_bound;
                match &mut self.cfg.mode {
                    Mode::Dfs => {
                        let sleep: &[usize] = if self.cfg.sleep_sets { &self.cur_sleep } else { &[] };
                        let awake: Vec<usize> =
                            eligible.iter().copied().filter(|t| !sleep.contains(t)).collect();
                        if awake.is_empty() {
                            self.abort = Some(Abort::Pruned);
                            return;
                        }
                        let cands: Vec<usize> = if cont_ok && bound_hit {
                            if !awake.contains(&cont) {
                                self.abort = Some(Abort::Pruned);
                                return;
                            }
                            vec![cont]
                        } else {
                            let mut v = Vec::with_capacity(awake.len());
                            if awake.contains(&cont) {
                                v.push(cont);
                            }
                            for &t in &awake {
                                if !v.contains(&t) {
                                    v.push(t);
                                }
                            }
                            v
                        };
                        chosen = cands[0];
                        self.levels.push(Level {
                            chosen,
                            untried: cands[1..].to_vec(),
                            slept: Vec::new(),
                        });
                    }
                    Mode::Random(rng) => {
                        let cands: Vec<usize> =
                            if cont_ok && bound_hit { vec![cont] } else { eligible.clone() };
                        let idx = (rng.next_u64() % cands.len() as u64) as usize;
                        chosen = cands[idx];
                        self.levels.push(Level { chosen, untried: Vec::new(), slept: Vec::new() });
                    }
                }
            }

            let chosen_op = match self.threads[chosen].status {
                Status::Ready(op) => op,
                _ => die(format!("chosen thread t{chosen} is not ready")),
            };
            // Preemption accounting: switching away from a thread whose
            // pending op was runnable costs one preemption.
            if chosen != self.last {
                if let Status::Ready(op) = self.threads[self.last].status {
                    if self.feasible(op) {
                        self.preemptions += 1;
                    }
                }
            }
            // Sleep-set update: survivors are threads whose pending op is
            // independent of the op just granted.
            if self.cfg.sleep_sets {
                let inherited = self.levels[self.depth].slept.clone();
                let mut ns: Vec<usize> = Vec::new();
                let pool: Vec<usize> =
                    self.cur_sleep.iter().chain(inherited.iter()).copied().collect();
                for u in pool {
                    if u == chosen || ns.contains(&u) {
                        continue;
                    }
                    if let Status::Ready(uop) = self.threads[u].status {
                        if !Core::dependent(uop, chosen_op) {
                            ns.push(u);
                        }
                    }
                }
                self.cur_sleep = ns;
            }
            self.grant(chosen, chosen_op);
            self.depth += 1;
            self.step_count += 1;
            if self.step_count > self.cfg.max_steps {
                self.abort = Some(Abort::Violation(Violation {
                    kind: ViolationKind::StepBudget,
                    message: format!(
                        "execution exceeded {} steps — livelock or unbounded loop",
                        self.cfg.max_steps
                    ),
                    schedule: crate::schedule::Schedule::default(),
                }));
            }
            return;
        }
    }
}

/// Publish `op`, run the scheduler, and block until this thread is
/// granted the token again. Returns the grant outcome.
pub(crate) fn yield_op(ctx: &ExecCtx, op: Op) -> GrantInfo {
    if std::thread::panicking() {
        return unwind_effect(ctx, op);
    }
    let core = &ctx.core;
    let mut g = core.lock();
    if g.abort.is_some() {
        drop(g);
        abort_unwind();
    }
    g.threads[ctx.tid].status = Status::Ready(op);
    g.pick_next();
    core.notify_all();
    loop {
        if matches!(g.threads[ctx.tid].status, Status::Running) {
            break;
        }
        if g.abort.is_some() {
            drop(g);
            abort_unwind();
        }
        g = core.wait(g);
    }
    let info = g.threads[ctx.tid].grant;
    drop(g);
    info
}

/// Atomically release `mutex` and park on `cv`; returns after a notify
/// (or stall-escape timeout, when `timed`) once the mutex is virtually
/// reacquired.
pub(crate) fn yield_cv_wait(ctx: &ExecCtx, cv: usize, mutex: usize, timed: bool) -> GrantInfo {
    if std::thread::panicking() {
        // Unwinding: give the mutex back and do not park.
        let mut g = ctx.core.lock();
        *g.mutex_holder_mut(mutex) = None;
        ctx.core.notify_all();
        return GrantInfo::default();
    }
    let core = &ctx.core;
    let mut g = core.lock();
    if g.abort.is_some() {
        drop(g);
        abort_unwind();
    }
    *g.mutex_holder_mut(mutex) = None;
    if let Some(Resource::Condvar { waiters }) = g.resources.get_mut(cv) {
        waiters.push(ctx.tid);
    }
    g.threads[ctx.tid].status = Status::WaitingCv { cv, mutex, timed };
    g.threads[ctx.tid].grant = GrantInfo::default();
    g.pick_next();
    core.notify_all();
    loop {
        if matches!(g.threads[ctx.tid].status, Status::Running) {
            break;
        }
        if g.abort.is_some() {
            drop(g);
            abort_unwind();
        }
        g = core.wait(g);
    }
    let info = g.threads[ctx.tid].grant;
    drop(g);
    info
}

/// Minimal non-blocking state repair for ops performed while unwinding
/// (guard drops during a panic): apply releases, never park, never throw.
fn unwind_effect(ctx: &ExecCtx, op: Op) -> GrantInfo {
    let mut g = ctx.core.lock();
    match op {
        Op::MutexUnlock(m) => *g.mutex_holder_mut(m) = None,
        Op::ChanDropSender(c) => {
            if let Some(Resource::Channel { senders, .. }) = g.resources.get_mut(c) {
                *senders = senders.saturating_sub(1);
            }
        }
        _ => {}
    }
    drop(g);
    ctx.core.notify_all();
    GrantInfo::default()
}

/// Register a new controlled thread (status `Ready(Start)`): the child's
/// real thread blocks in [`wait_until_started`] until the scheduler
/// grants its `Start` op.
pub(crate) fn register_thread(core: &Arc<CoreShared>, name: String) -> usize {
    let mut g = core.lock();
    let tid = g.threads.len();
    g.threads.push(TState::new(name, Status::Ready(Op::Start)));
    g.live += 1;
    tid
}

/// Register the root model thread (tid 0), which starts with the token.
pub(crate) fn register_root(core: &Arc<CoreShared>) -> usize {
    let mut g = core.lock();
    let tid = g.threads.len();
    g.threads.push(TState::new("main".to_string(), Status::Running));
    g.live += 1;
    g.last = tid;
    tid
}

/// Block until this freshly spawned thread is granted its `Start` op.
/// Returns false when the execution aborted before the thread ever ran
/// (the caller must still go through [`thread_exited`]).
pub(crate) fn wait_until_started(core: &Arc<CoreShared>, tid: usize) -> bool {
    let mut g = core.lock();
    loop {
        if matches!(g.threads[tid].status, Status::Running) {
            return true;
        }
        if g.abort.is_some() {
            g.threads[tid].status = Status::Finished;
            return false;
        }
        g = core.wait(g);
    }
}

/// Mark a controlled thread finished and hand the token onwards. Called
/// from the real thread's wrapper after user code returned or unwound.
pub(crate) fn finish_thread(core: &Arc<CoreShared>, tid: usize, panicked: bool) {
    let mut g = core.lock();
    g.threads[tid].status = Status::Finished;
    if panicked {
        // The panic hook records the violation; this is a safety net for
        // panics it could not attribute.
        if g.abort.is_none() {
            g.abort = Some(Abort::Violation(Violation {
                kind: ViolationKind::Panic,
                message: format!("thread t{tid} panicked (no hook capture)"),
                schedule: crate::schedule::Schedule::default(),
            }));
        }
    } else if g.abort.is_none() {
        g.pick_next();
    }
    drop(g);
    core.notify_all();
}

/// Count a real controlled thread as exited (driver barrier).
pub(crate) fn thread_exited(core: &Arc<CoreShared>) {
    let mut g = core.lock();
    g.exited += 1;
    drop(g);
    core.notify_all();
}

/// Record a violation from the panic hook (first panic wins).
pub(crate) fn record_panic_violation(ctx: &ExecCtx, message: String) {
    let mut g = ctx.core.lock();
    if g.abort.is_none() {
        g.abort = Some(Abort::Violation(Violation {
            kind: ViolationKind::Panic,
            message,
            schedule: crate::schedule::Schedule::default(),
        }));
    }
    drop(g);
    ctx.core.notify_all();
}

/// Queue used by the driver to learn about execution end. Not a shim
/// type — plain bookkeeping.
pub(crate) struct DriverView {
    /// Early-stop reason.
    pub abort: Option<Abort>,
    /// Decision stack to persist for backtracking.
    pub levels: Vec<Level>,
    /// Granted-op log.
    pub steps: Vec<StepRec>,
    /// Deepest step count observed.
    pub step_count: usize,
}

/// Driver side: block until the execution ends and every controlled real
/// thread has exited, then strip the core for the next round.
pub(crate) fn drive_to_end(core: &Arc<CoreShared>) -> DriverView {
    let mut g = core.lock();
    while !(g.complete || g.abort.is_some()) {
        g = core.wait(g);
    }
    core.notify_all();
    while g.exited < g.live {
        g = core.wait(g);
    }
    DriverView {
        abort: g.abort.take(),
        levels: std::mem::take(&mut g.levels),
        steps: std::mem::take(&mut g.steps),
        step_count: g.step_count,
    }
}
