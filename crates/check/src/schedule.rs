//! Replayable counterexample schedules.
//!
//! A schedule is the complete decision log of one execution: every grant
//! the scheduler made, in order. Serialised as JSONL (one step per line)
//! it is both human-readable — each line names the thread, the operation
//! and the resource — and machine-replayable: [`Schedule::decisions`]
//! recovers the thread-id sequence that [`crate::replay`] feeds back into
//! the scheduler to re-execute the interleaving deterministically.

/// One granted operation in an execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StepRec {
    /// 0-based position in the schedule.
    pub step: usize,
    /// Thread id granted at this step.
    pub thread: usize,
    /// Thread debug name (e.g. `worker-0`).
    pub name: String,
    /// Operation kind (`lock`, `unlock`, `notify_one`, `send`, …).
    pub op: String,
    /// Resource the operation touched (`m0:gateway.queue`, `cv1`, `t2`).
    pub resource: String,
}

/// A full decision log, serialisable to/from JSONL.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schedule {
    /// The granted steps, in execution order.
    pub steps: Vec<StepRec>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extract the integer value of `"key":<digits>` from a JSONL line.
fn field_usize(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = line[at..].trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extract the string value of `"key":"…"` from a JSONL line (handles the
/// escapes `esc` produces).
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let at = line.find(&pat)? + pat.len();
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = at;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(out),
            b'\\' if i + 1 < bytes.len() => {
                match bytes[i + 1] {
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    c => out.push(c as char),
                }
                i += 2;
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    None
}

impl Schedule {
    /// Build from the scheduler's step log.
    pub(crate) fn from_steps(steps: Vec<StepRec>) -> Self {
        Schedule { steps }
    }

    /// The thread-id decision sequence (what replay needs).
    pub fn decisions(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.thread).collect()
    }

    /// Serialise as JSONL: one `{"step":…,"thread":…,…}` object per line.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.steps {
            out.push_str(&format!(
                "{{\"step\":{},\"thread\":{},\"name\":\"{}\",\"op\":\"{}\",\"resource\":\"{}\"}}\n",
                s.step,
                s.thread,
                esc(&s.name),
                esc(&s.op),
                esc(&s.resource),
            ));
        }
        out
    }

    /// Parse a schedule back from JSONL. Lines without a `"thread"` field
    /// are skipped, so annotated/commented dumps still replay. Returns
    /// `None` when no steps were found.
    pub fn from_jsonl(text: &str) -> Option<Self> {
        let mut steps = Vec::new();
        for line in text.lines() {
            let Some(thread) = field_usize(line, "thread") else { continue };
            steps.push(StepRec {
                step: field_usize(line, "step").unwrap_or(steps.len()),
                thread,
                name: field_str(line, "name").unwrap_or_default(),
                op: field_str(line, "op").unwrap_or_default(),
                resource: field_str(line, "resource").unwrap_or_default(),
            });
        }
        if steps.is_empty() {
            None
        } else {
            Some(Schedule { steps })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip() {
        let s = Schedule {
            steps: vec![
                StepRec {
                    step: 0,
                    thread: 0,
                    name: "main".into(),
                    op: "lock".into(),
                    resource: "m0:gateway.queue".into(),
                },
                StepRec {
                    step: 1,
                    thread: 2,
                    name: "worker \"w\"".into(),
                    op: "notify_one".into(),
                    resource: "cv1".into(),
                },
            ],
        };
        let text = s.to_jsonl();
        let back = Schedule::from_jsonl(&text).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.decisions(), vec![0, 2]);
    }

    #[test]
    fn parse_skips_foreign_lines() {
        let text = "# comment\n{\"thread\":3,\"op\":\"send\"}\nnot json\n";
        let s = Schedule::from_jsonl(text).unwrap();
        assert_eq!(s.decisions(), vec![3]);
        assert_eq!(s.steps[0].op, "send");
    }

    #[test]
    fn empty_parse_is_none() {
        assert!(Schedule::from_jsonl("").is_none());
        assert!(Schedule::from_jsonl("plain text\n").is_none());
    }
}
