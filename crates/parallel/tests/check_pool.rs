//! Model-check the real [`ThreadPool`] submit/run/quiescence protocol.
//!
//! Build with `RUSTFLAGS="--cfg astro_check"`; in normal builds this file
//! compiles to nothing. The checker explores every interleaving (up to
//! the preemption bound) of submitters, workers and `join`, asserting:
//!
//! * no deadlock and no lost quiescence wakeup;
//! * `join` returns only after every submitted job ran;
//! * dropping the pool drains outstanding jobs before the workers exit.
#![cfg(astro_check)]

use astro_check::{explore, explore_random, CheckConfig};
use astro_parallel::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn cfg() -> CheckConfig {
    CheckConfig::default()
}

#[test]
fn join_waits_for_every_job() {
    let report = explore(&cfg(), || {
        let pool = ThreadPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..2 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 2, "join returned before jobs finished");
        assert_eq!(pool.queue_depth(), 0);
        drop(pool);
    });
    assert!(report.ok(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(report.schedules > 1, "expected interleavings, got {}", report.schedules);
}

#[test]
fn drop_drains_outstanding_jobs() {
    let report = explore(&cfg(), || {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(1);
            for _ in 0..2 {
                let d = Arc::clone(&done);
                pool.execute(move || {
                    d.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Dropped with jobs possibly still queued.
        }
        assert_eq!(done.load(Ordering::Relaxed), 2, "drop lost queued jobs");
    });
    assert!(report.ok(), "{:?}", report.violation);
    assert!(!report.truncated);
}

#[test]
fn two_workers_random_walk() {
    // Two workers double the interleaving space; sample it with the
    // seeded random walker instead of exhaustive enumeration.
    let report = explore_random(&cfg(), 42, 60, || {
        let pool = ThreadPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..3 {
            let d = Arc::clone(&done);
            pool.execute(move || {
                d.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 3);
        drop(pool);
    });
    assert!(report.ok(), "{:?}", report.violation);
}
