//! Stress test for the debug-build lock-order instrumentation.
//!
//! Hammers the thread pool with jobs that touch every ranked lock in the
//! hierarchy (pool pending counter, telemetry metrics/span registries,
//! telemetry sink) from many threads at once. Under `cfg(debug_assertions)`
//! each acquisition is checked against the thread-local held stack, so any
//! rank inversion introduced in `crates/parallel` or `crates/telemetry`
//! panics here instead of deadlocking in a long training run.

use astro_parallel::pool::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn pool_and_telemetry_respect_lock_order() {
    astro_telemetry::sink::init_memory();
    let pool = ThreadPool::new(4);
    let done = Arc::new(AtomicUsize::new(0));
    for i in 0..200usize {
        let done = Arc::clone(&done);
        pool.execute(move || {
            // Spans nest registry (rank 22) inside nothing, then emit to the
            // sink (rank 30) from the guard's Drop — strictly increasing.
            let g = astro_telemetry::span!("stress.job", idx = i);
            g.record_f64("work", i as f64);
            // Metrics registry (rank 20) while the span is open but its
            // registry lock is released — no nesting across ranks 20/22.
            astro_telemetry::counter("stress.jobs").inc();
            astro_telemetry::gauge("stress.last").set(i as i64);
            drop(g);
            astro_telemetry::Event::new("stress_tick").u64_field("idx", i as u64).emit();
            done.fetch_add(1, Ordering::Relaxed);
        });
    }
    // `join` holds the pending lock (rank 12) across a condvar wait while
    // workers reacquire it to decrement — same lock, no ordering edge.
    pool.join();
    assert_eq!(done.load(Ordering::Relaxed), 200);
    // Every token must have been released: nothing is held after quiescence.
    assert_eq!(astro_telemetry::lockcheck::held_count(), 0);
    let lines = astro_telemetry::sink::drain_memory();
    assert!(lines.len() >= 200, "expected >=200 sink lines, got {}", lines.len());
    astro_telemetry::sink::close();
}

/// Nested pool use: jobs that submit further jobs exercise the
/// receiver (rank 10) → pending (rank 12) edge from inside a worker.
#[test]
fn nested_submission_respects_lock_order() {
    let pool = Arc::new(ThreadPool::new(2));
    let done = Arc::new(AtomicUsize::new(0));
    for _ in 0..20usize {
        let done = Arc::clone(&done);
        let inner = Arc::clone(&pool);
        pool.execute(move || {
            let done2 = Arc::clone(&done);
            inner.execute(move || {
                done2.fetch_add(1, Ordering::Relaxed);
            });
            done.fetch_add(1, Ordering::Relaxed);
        });
    }
    // Poll rather than join: join only waits for currently-pending jobs,
    // and nested submissions race with the outer count reaching zero.
    for _ in 0..2000 {
        if done.load(Ordering::Relaxed) == 40 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    pool.join();
    assert_eq!(done.load(Ordering::Relaxed), 40);
    assert_eq!(astro_telemetry::lockcheck::held_count(), 0);
}
