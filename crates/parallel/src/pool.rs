//! A fixed-size worker thread pool built on a shared std `mpsc` channel.
//!
//! The pool owns long-lived worker threads that receive boxed jobs from a
//! single channel guarded by a mutex (the classic shared-receiver pattern
//! from *The Rust Programming Language*, ch. 20). It is used where scoped
//! helpers are awkward — e.g. pipelined corpus generation while the
//! trainer consumes batches.
//!
//! Shutdown is by dropping the pool: the channel disconnects and workers
//! exit after draining outstanding jobs. `join` waits for quiescence via a
//! pending-job counter + condvar, the pattern recommended in *Rust Atomics
//! and Locks* (ch. 1, condition variables).
//!
//! **Panic isolation.** Every job runs under `catch_unwind`: a panicking
//! job is counted (`pool.job_panics` counter, [`ThreadPool::panics`]),
//! its pending slot is released, and the worker keeps serving the queue —
//! a panic can therefore never hang `join` or starve the pool. The
//! `pool.worker_panic` fault site injects exactly such a panic for the
//! chaos suite. Mutex poisoning (possible via the `pool.pending_poison`
//! fault site, which panics inside the pending-counter critical section)
//! is recovered rather than propagated: the protected state is a plain
//! counter that every critical section leaves consistent, so later
//! callers adopt it as-is and `join` can never hang on a poisoned lock.
//!
//! The pool's primitives come from `astro_telemetry::sync` (std in
//! normal builds, the `astro-check` model-checker shim under
//! `--cfg astro_check`), so the submit/run/quiescence protocol is
//! exhaustively explored for deadlocks and lost wakeups by
//! `tests/check_pool.rs`.

use astro_resilience::fault;
use astro_telemetry::sync::mpsc::{channel, Receiver, Sender};
use astro_telemetry::sync::{self, thread, Condvar, Mutex, PoisonError};
use std::sync::Arc;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    pending: Mutex<usize>,
    quiescent: Condvar,
    /// Mirror of `pending` for observability dashboards.
    depth_gauge: astro_telemetry::metrics::Gauge,
    /// Jobs that panicked instead of completing (isolated, not fatal).
    panics: std::sync::atomic::AtomicUsize,
}

impl Shared {
    /// Take the pending-counter lock under its declared rank, recovering
    /// from poison (the counter cannot be left half-updated).
    fn lock_pending(
        &self,
    ) -> (astro_telemetry::lockcheck::LockToken, sync::MutexGuard<'_, usize>) {
        sync::lock_ranked("parallel.pool.pending", &self.pending)
    }

    /// Run one job with panic isolation, then release its pending slot.
    fn run_job(&self, job: Job) {
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if fault::should_fault("pool.worker_panic") {
                std::panic::panic_any(fault::FaultPanic("pool.worker_panic"));
            }
            job();
        }));
        if outcome.is_err() {
            self.panics.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            astro_telemetry::counter("pool.job_panics").inc();
        }
        let (_order, mut pending) = self.lock_pending();
        *pending = pending.saturating_sub(1);
        self.depth_gauge.set(*pending as i64);
        if *pending == 0 {
            self.quiescent.notify_all();
        }
        // Chaos hook: panic while still holding the pending lock,
        // poisoning it *after* the decrement+notify completed — the
        // recovery contract is that `lock_pending` adopts the (valid)
        // counter as-is, so `join` never hangs on a poisoned lock.
        if fault::should_fault("pool.pending_poison") {
            std::panic::panic_any(fault::FaultPanic("pool.pending_poison"));
        }
    }
}

/// A fixed-size worker pool.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawn a pool with `size` workers (`size` is clamped to at least
    /// 1). If the OS refuses some worker threads the pool degrades to
    /// however many it got; with zero workers, jobs run inline on the
    /// submitting thread.
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let shared = Arc::new(Shared {
            pending: Mutex::new(0),
            quiescent: Condvar::new(),
            depth_gauge: astro_telemetry::gauge("pool.queue_depth"),
            panics: std::sync::atomic::AtomicUsize::new(0),
        });
        let workers: Vec<_> = (0..size)
            .filter_map(|i| {
                let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("astro-pool-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while receiving, not while
                        // running the job, so workers execute concurrently.
                        let job = {
                            let (_order, rx_guard) =
                                sync::lock_ranked("parallel.pool.receiver", &rx);
                            match rx_guard.recv() {
                                Ok(job) => job,
                                Err(_) => break, // channel disconnected
                            }
                        };
                        shared.run_job(job);
                    })
                    .ok()
            })
            .collect();
        if workers.len() < size {
            astro_telemetry::info!(
                "thread pool degraded: spawned {} of {size} workers",
                workers.len()
            );
        }
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted but not yet completed.
    pub fn queue_depth(&self) -> usize {
        let (_order, pending) = self.shared.lock_pending();
        *pending
    }

    /// Jobs that panicked instead of completing since the pool was built.
    pub fn panics(&self) -> usize {
        self.shared.panics.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Submit a job for asynchronous execution. If no worker can take it
    /// (spawn failure degraded the pool to zero workers, or the workers
    /// have exited), the job runs inline on this thread instead of being
    /// lost — submission never fails.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let (_order, mut pending) = self.shared.lock_pending();
            *pending += 1;
            self.shared.depth_gauge.set(*pending as i64);
        }
        let boxed: Job = Box::new(job);
        if self.workers.is_empty() {
            self.shared.run_job(boxed);
            return;
        }
        let Some(sender) = self.sender.as_ref() else {
            self.shared.run_job(boxed);
            return;
        };
        if let Err(returned) = sender.send(boxed) {
            // Receiver gone (workers exited): run the returned job inline.
            self.shared.run_job(returned.0);
        }
    }

    /// Block until every submitted job has completed.
    pub fn join(&self) {
        let (_order, mut pending) = self.shared.lock_pending();
        while *pending > 0 {
            pending = self
                .shared
                .quiescent
                .wait(pending)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers exit after draining.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_on_idle_pool_returns() {
        let pool = ThreadPool::new(2);
        pool.join();
    }

    #[test]
    fn size_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn queue_depth_drains_to_zero() {
        let pool = ThreadPool::new(2);
        for _ in 0..8 {
            pool.execute(|| std::thread::sleep(std::time::Duration::from_millis(1)));
        }
        pool.join();
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn drop_waits_for_outstanding_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // pool dropped here
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn jobs_can_submit_results_through_channels() {
        let pool = ThreadPool::new(3);
        let (tx, rx) = channel();
        for i in 0..20u64 {
            let tx = tx.clone();
            pool.execute(move || {
                tx.send(i * 2).unwrap();
            });
        }
        drop(tx);
        pool.join();
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_is_isolated_and_join_still_returns() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                if i == 3 {
                    // Deliberate panic; the pool must absorb it.
                    std::panic::panic_any("test job panic");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 9);
        assert_eq!(pool.panics(), 1);
        assert_eq!(pool.queue_depth(), 0);
        // The pool keeps working after the panic.
        let c = Arc::clone(&counter);
        pool.execute(move || {
            c.fetch_add(1, Ordering::Relaxed);
        });
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }
}
