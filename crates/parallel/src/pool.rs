//! A fixed-size worker thread pool built on a shared std `mpsc` channel.
//!
//! The pool owns long-lived worker threads that receive boxed jobs from a
//! single channel guarded by a mutex (the classic shared-receiver pattern
//! from *The Rust Programming Language*, ch. 20). It is used where scoped
//! helpers are awkward — e.g. pipelined corpus generation while the
//! trainer consumes batches.
//!
//! Shutdown is by dropping the pool: the channel disconnects and workers
//! exit after draining outstanding jobs. `join` waits for quiescence via a
//! pending-job counter + condvar, the pattern recommended in *Rust Atomics
//! and Locks* (ch. 1, condition variables).

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    pending: Mutex<usize>,
    quiescent: Condvar,
    /// Mirror of `pending` for observability dashboards.
    depth_gauge: astro_telemetry::metrics::Gauge,
}

/// A fixed-size worker pool.
pub struct ThreadPool {
    sender: Option<Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawn a pool with `size` workers (`size` is clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let shared = Arc::new(Shared {
            pending: Mutex::new(0),
            quiescent: Condvar::new(),
            depth_gauge: astro_telemetry::gauge("pool.queue_depth"),
        });
        let workers = (0..size)
            .map(|i| {
                let rx: Arc<Mutex<Receiver<Job>>> = Arc::clone(&receiver);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("astro-pool-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while receiving, not while
                        // running the job, so workers execute concurrently.
                        let job = {
                            let _order =
                                astro_telemetry::lockcheck::acquire("parallel.pool.receiver");
                            match rx.lock().expect("pool receiver poisoned").recv() {
                                Ok(job) => job,
                                Err(_) => break, // channel disconnected
                            }
                        };
                        job();
                        let _order = astro_telemetry::lockcheck::acquire("parallel.pool.pending");
                        let mut pending = shared.pending.lock().expect("pending poisoned");
                        *pending -= 1;
                        shared.depth_gauge.set(*pending as i64);
                        if *pending == 0 {
                            shared.quiescent.notify_all();
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Jobs submitted but not yet completed.
    pub fn queue_depth(&self) -> usize {
        let _order = astro_telemetry::lockcheck::acquire("parallel.pool.pending");
        *self.shared.pending.lock().expect("pending poisoned")
    }

    /// Submit a job for asynchronous execution.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let _order = astro_telemetry::lockcheck::acquire("parallel.pool.pending");
            let mut pending = self.shared.pending.lock().expect("pending poisoned");
            *pending += 1;
            self.shared.depth_gauge.set(*pending as i64);
        }
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("pool workers have exited");
    }

    /// Block until every submitted job has completed.
    pub fn join(&self) {
        let _order = astro_telemetry::lockcheck::acquire("parallel.pool.pending");
        let mut pending = self.shared.pending.lock().expect("pending poisoned");
        while *pending > 0 {
            pending = self.shared.quiescent.wait(pending).expect("pending poisoned");
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers exit after draining.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_on_idle_pool_returns() {
        let pool = ThreadPool::new(2);
        pool.join();
    }

    #[test]
    fn size_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn queue_depth_drains_to_zero() {
        let pool = ThreadPool::new(2);
        for _ in 0..8 {
            pool.execute(|| std::thread::sleep(std::time::Duration::from_millis(1)));
        }
        pool.join();
        assert_eq!(pool.queue_depth(), 0);
    }

    #[test]
    fn drop_waits_for_outstanding_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // pool dropped here
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn jobs_can_submit_results_through_channels() {
        let pool = ThreadPool::new(3);
        let (tx, rx) = channel();
        for i in 0..20u64 {
            let tx = tx.clone();
            pool.execute(move || {
                tx.send(i * 2).unwrap();
            });
        }
        drop(tx);
        pool.join();
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }
}
