//! A fixed-size worker thread pool built on crossbeam channels.
//!
//! The pool owns long-lived worker threads that receive boxed jobs from an
//! unbounded channel. It is used where scoped helpers are awkward — e.g.
//! pipelined corpus generation while the trainer consumes batches.
//!
//! Shutdown is by dropping the pool: the channel disconnects and workers
//! exit after draining outstanding jobs. `join` waits for quiescence via a
//! pending-job counter + condvar, the pattern recommended in *Rust Atomics
//! and Locks* (ch. 1, condition variables).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    pending: Mutex<usize>,
    quiescent: Condvar,
}

/// A fixed-size worker pool.
pub struct ThreadPool {
    sender: Option<crossbeam::channel::Sender<Job>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawn a pool with `size` workers (`size` is clamped to at least 1).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = crossbeam::channel::unbounded::<Job>();
        let shared = Arc::new(Shared {
            pending: Mutex::new(0),
            quiescent: Condvar::new(),
        });
        let workers = (0..size)
            .map(|i| {
                let rx = receiver.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("astro-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            let mut pending = shared.pending.lock();
                            *pending -= 1;
                            if *pending == 0 {
                                shared.quiescent.notify_all();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            sender: Some(sender),
            workers,
            shared,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Submit a job for asynchronous execution.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        {
            let mut pending = self.shared.pending.lock();
            *pending += 1;
        }
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(Box::new(job))
            .expect("pool workers have exited");
    }

    /// Block until every submitted job has completed.
    pub fn join(&self) {
        let mut pending = self.shared.pending.lock();
        while *pending > 0 {
            self.shared.quiescent.wait(&mut pending);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Disconnect the channel so workers exit after draining.
        self.sender.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn join_on_idle_pool_returns() {
        let pool = ThreadPool::new(2);
        pool.join();
    }

    #[test]
    fn size_clamped_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn drop_waits_for_outstanding_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..10 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // pool dropped here
        }
        assert_eq!(counter.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn jobs_can_submit_results_through_channels() {
        let pool = ThreadPool::new(3);
        let (tx, rx) = crossbeam::channel::unbounded();
        for i in 0..20u64 {
            let tx = tx.clone();
            pool.execute(move || {
                tx.send(i * 2).unwrap();
            });
        }
        drop(tx);
        pool.join();
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..20).map(|i| i * 2).collect::<Vec<_>>());
    }
}
