//! Simulated multi-device data-parallel training.
//!
//! The paper's CPT runs are data-parallel over many A100s: each GPU holds a
//! model replica, computes gradients on its shard of the batch, and the
//! gradients are averaged with an all-reduce. [`DeviceGrid`] reproduces that
//! structure with threads as devices and a **ring all-reduce** over
//! shared-memory mailboxes — the same `2·(n−1)`-step schedule used by NCCL,
//! so communication-volume accounting ([`ReduceStats`]) is faithful.
//!
//! The grid is deliberately synchronous (bulk-synchronous parallel): one
//! `step` = local work on every device, then a collective. Determinism is
//! preserved because each chunk of the reduced buffer is combined in ring
//! order, which is fixed by the topology, not by thread timing.

use std::sync::{Arc, Condvar, Mutex};

/// Statistics from one all-reduce collective.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ReduceStats {
    /// Number of devices participating.
    pub devices: usize,
    /// Elements in the reduced buffer.
    pub elements: usize,
    /// Total f32 elements moved between devices (both phases).
    pub elements_communicated: usize,
}

/// One mailbox slot used to pass a chunk between ring neighbours.
struct Mailbox {
    slot: Mutex<Option<Vec<f32>>>,
    ready: Condvar,
    taken: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox {
            slot: Mutex::new(None),
            ready: Condvar::new(),
            taken: Condvar::new(),
        }
    }

    // Poisoning recovery: the slot is a plain `Option` — a panic on a
    // peer thread cannot leave it half-written, so `into_inner` is safe
    // and keeps the collective from amplifying one panic into many.
    fn put(&self, v: Vec<f32>) {
        let _order = astro_telemetry::lockcheck::acquire("parallel.device.mailbox");
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while slot.is_some() {
            slot = self
                .taken
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        *slot = Some(v);
        self.ready.notify_one();
    }

    fn take(&self) -> Vec<f32> {
        let _order = astro_telemetry::lockcheck::acquire("parallel.device.mailbox");
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(v) = slot.take() {
                self.taken.notify_one();
                return v;
            }
            slot = self
                .ready
                .wait(slot)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// Average `buffers` (one per device, all the same length) in place using a
/// ring all-reduce executed on one thread per device.
///
/// After the call every buffer contains the element-wise mean of the
/// originals. Returns communication statistics.
///
/// # Panics
/// Panics if the buffers have mismatched lengths or `buffers` is empty.
pub fn ring_all_reduce(buffers: &mut [&mut [f32]]) -> ReduceStats {
    let start = std::time::Instant::now();
    let n = buffers.len();
    assert!(n > 0, "ring_all_reduce requires at least one device");
    let len = buffers[0].len();
    assert!(
        buffers.iter().all(|b| b.len() == len),
        "ring_all_reduce buffers must have equal lengths"
    );
    if n == 1 {
        return ReduceStats {
            devices: 1,
            elements: len,
            elements_communicated: 0,
        };
    }
    if len == 0 {
        return ReduceStats {
            devices: n,
            elements: 0,
            elements_communicated: 0,
        };
    }

    // Chunk boundaries: chunk c covers [starts[c], starts[c+1]).
    let base = len / n;
    let rem = len % n;
    let mut starts = Vec::with_capacity(n + 1);
    let mut acc = 0;
    starts.push(0);
    for c in 0..n {
        acc += base + usize::from(c < rem);
        starts.push(acc);
    }

    // Mailbox m[i] carries data from device i to device (i+1) % n.
    let mailboxes: Vec<Arc<Mailbox>> = (0..n).map(|_| Arc::new(Mailbox::new())).collect();
    let mut communicated = 0usize;

    std::thread::scope(|s| {
        for (rank, buf) in buffers.iter_mut().enumerate() {
            let send_box = Arc::clone(&mailboxes[rank]);
            let recv_box = Arc::clone(&mailboxes[(rank + n - 1) % n]);
            let starts = &starts;
            s.spawn(move || {
                // Phase 1: reduce-scatter. In step k, device r sends chunk
                // (r - k) mod n and accumulates the incoming chunk into
                // (r - k - 1) mod n. After n-1 steps, device r owns the
                // fully reduced chunk (r + 1) mod n.
                for k in 0..(n - 1) {
                    let send_c = (rank + n - k) % n;
                    let recv_c = (rank + n - k - 1) % n;
                    let payload = buf[starts[send_c]..starts[send_c + 1]].to_vec();
                    send_box.put(payload);
                    let incoming = recv_box.take();
                    let dst = &mut buf[starts[recv_c]..starts[recv_c + 1]];
                    debug_assert_eq!(incoming.len(), dst.len());
                    for (d, x) in dst.iter_mut().zip(incoming.iter()) {
                        *d += x;
                    }
                }
                // Phase 2: all-gather. Device r starts by sending its owned
                // chunk (r + 1) mod n; each received chunk is copied and
                // forwarded.
                for k in 0..(n - 1) {
                    let send_c = (rank + 1 + n - k) % n;
                    let recv_c = (rank + n - k) % n;
                    let payload = buf[starts[send_c]..starts[send_c + 1]].to_vec();
                    send_box.put(payload);
                    let incoming = recv_box.take();
                    let dst = &mut buf[starts[recv_c]..starts[recv_c + 1]];
                    dst.copy_from_slice(&incoming);
                }
                // Convert the sum into a mean.
                let inv = 1.0 / n as f32;
                for x in buf.iter_mut() {
                    *x *= inv;
                }
            });
        }
    });

    // Each device sends its full buffer twice over the collective
    // (asymptotically 2·len·(n−1)/n per device).
    communicated += 2 * (n - 1) * len;

    astro_telemetry::histogram("allreduce.micros")
        .observe(start.elapsed().as_micros() as f64);
    astro_telemetry::counter("allreduce.bytes")
        .add(communicated as u64 * std::mem::size_of::<f32>() as u64);

    ReduceStats {
        devices: n,
        elements: len,
        elements_communicated: communicated,
    }
}

/// A grid of simulated devices for data-parallel training.
///
/// Each device holds caller-provided state `D` (a model replica plus
/// scratch). [`DeviceGrid::step`] runs a closure on every device in
/// parallel, collects each device's gradient buffer reference, and averages
/// them with [`ring_all_reduce`].
pub struct DeviceGrid<D> {
    devices: Vec<D>,
    stats: ReduceStats,
}

impl<D: Send> DeviceGrid<D> {
    /// Build a grid from per-device state.
    pub fn new(devices: Vec<D>) -> Self {
        assert!(!devices.is_empty(), "DeviceGrid requires at least one device");
        DeviceGrid {
            devices,
            stats: ReduceStats::default(),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True if the grid has exactly zero devices (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Immutable access to device state (e.g. to read the replica on rank
    /// 0 after training).
    pub fn device(&self, rank: usize) -> &D {
        &self.devices[rank]
    }

    /// Mutable access to a single device's state.
    pub fn device_mut(&mut self, rank: usize) -> &mut D {
        &mut self.devices[rank]
    }

    /// Consume the grid and return the device states.
    pub fn into_devices(self) -> Vec<D> {
        self.devices
    }

    /// Cumulative communication statistics of the last collective.
    pub fn last_reduce_stats(&self) -> ReduceStats {
        self.stats
    }

    /// Run one bulk-synchronous step: `local` executes on every device in
    /// parallel (one thread per device), then `grads` projects out each
    /// device's gradient buffer and the buffers are ring-all-reduced to
    /// their mean.
    pub fn step<L, G>(&mut self, local: L, grads: G)
    where
        L: Fn(usize, &mut D) + Sync,
        D: Send,
        G: Fn(&mut D) -> &mut [f32] + Sync,
    {
        // Local compute phase.
        std::thread::scope(|s| {
            for (rank, dev) in self.devices.iter_mut().enumerate() {
                let local = &local;
                s.spawn(move || local(rank, dev));
            }
        });
        // Collective phase.
        let mut bufs: Vec<&mut [f32]> = self.devices.iter_mut().map(grads).collect();
        self.stats = ring_all_reduce(&mut bufs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_mean(inputs: &[Vec<f32>]) -> Vec<f32> {
        let n = inputs.len() as f32;
        let len = inputs[0].len();
        (0..len)
            .map(|i| inputs.iter().map(|b| b[i]).sum::<f32>() / n)
            .collect()
    }

    #[test]
    fn all_reduce_two_devices() {
        let inputs = vec![vec![1.0, 2.0, 3.0, 4.0, 5.0], vec![5.0, 4.0, 3.0, 2.0, 1.0]];
        let mut bufs: Vec<Vec<f32>> = inputs.clone();
        let expect = reference_mean(&inputs);
        let mut refs: Vec<&mut [f32]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        let stats = ring_all_reduce(&mut refs);
        for b in &bufs {
            for (got, want) in b.iter().zip(expect.iter()) {
                assert!((got - want).abs() < 1e-6, "{got} vs {want}");
            }
        }
        assert_eq!(stats.devices, 2);
        assert_eq!(stats.elements, 5);
        assert!(stats.elements_communicated > 0);
    }

    #[test]
    fn all_reduce_many_devices_uneven_chunks() {
        // len=10 across 4 devices: chunks 3,3,2,2 — exercises remainder
        // handling.
        let inputs: Vec<Vec<f32>> = (0..4)
            .map(|d| (0..10).map(|i| (d * 10 + i) as f32).collect())
            .collect();
        let expect = reference_mean(&inputs);
        let mut bufs = inputs.clone();
        let mut refs: Vec<&mut [f32]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        ring_all_reduce(&mut refs);
        for b in &bufs {
            for (got, want) in b.iter().zip(expect.iter()) {
                assert!((got - want).abs() < 1e-5, "{got} vs {want}");
            }
        }
    }

    #[test]
    fn all_reduce_single_device_is_identity() {
        let mut buf = vec![1.0f32, 2.0, 3.0];
        let mut refs: Vec<&mut [f32]> = vec![buf.as_mut_slice()];
        let stats = ring_all_reduce(&mut refs);
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        assert_eq!(stats.elements_communicated, 0);
    }

    #[test]
    fn all_reduce_len_smaller_than_devices() {
        // 3 devices, 2 elements: one chunk is empty.
        let inputs = vec![vec![3.0, 0.0], vec![0.0, 3.0], vec![3.0, 3.0]];
        let expect = reference_mean(&inputs);
        let mut bufs = inputs.clone();
        let mut refs: Vec<&mut [f32]> = bufs.iter_mut().map(|b| b.as_mut_slice()).collect();
        ring_all_reduce(&mut refs);
        for b in &bufs {
            for (got, want) in b.iter().zip(expect.iter()) {
                assert!((got - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn all_reduce_empty_buffers() {
        let mut a: Vec<f32> = vec![];
        let mut b: Vec<f32> = vec![];
        let mut refs: Vec<&mut [f32]> = vec![a.as_mut_slice(), b.as_mut_slice()];
        let stats = ring_all_reduce(&mut refs);
        assert_eq!(stats.elements, 0);
    }

    struct Dev {
        grad: Vec<f32>,
        rank_seen: usize,
    }

    #[test]
    fn grid_step_runs_local_then_reduces() {
        let devices = (0..3)
            .map(|_| Dev {
                grad: vec![0.0; 6],
                rank_seen: usize::MAX,
            })
            .collect();
        let mut grid = DeviceGrid::new(devices);
        grid.step(
            |rank, d| {
                d.rank_seen = rank;
                for (i, g) in d.grad.iter_mut().enumerate() {
                    *g = (rank * 6 + i) as f32;
                }
            },
            |d| d.grad.as_mut_slice(),
        );
        // mean over ranks of (rank*6 + i) = 6*mean(rank) + i = 6 + i
        for rank in 0..3 {
            let d = grid.device(rank);
            assert_eq!(d.rank_seen, rank);
            for (i, g) in d.grad.iter().enumerate() {
                let want = 6.0 + i as f32;
                assert!((g - want).abs() < 1e-5, "rank {rank} idx {i}: {g} vs {want}");
            }
        }
        assert_eq!(grid.last_reduce_stats().devices, 3);
    }

    #[test]
    fn grid_accessors() {
        let mut grid = DeviceGrid::new(vec![1u32, 2, 3]);
        assert_eq!(grid.len(), 3);
        assert!(!grid.is_empty());
        *grid.device_mut(1) = 20;
        assert_eq!(*grid.device(1), 20);
        assert_eq!(grid.into_devices(), vec![1, 20, 3]);
    }
}
