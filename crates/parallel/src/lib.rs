//! Parallel-execution substrate for the AstroMLab 2 reproduction.
//!
//! The paper trains its models with LMFlow on multi-GPU A100 nodes using
//! data parallelism. We have no GPUs, so this crate provides the closest
//! CPU equivalent while exercising the same *code paths* a distributed
//! trainer needs:
//!
//! * [`ThreadPool`] — a small fixed-size worker pool built on std `mpsc`
//!   channels, used for task parallelism (document generation, evaluation
//!   over question batches).
//! * [`parallel_for`] / [`par_map`] — scoped data-parallel helpers that
//!   split index ranges across threads (no allocation on the hot path
//!   beyond one closure per worker).
//! * [`device::DeviceGrid`] — a simulated multi-device data-parallel
//!   trainer: each "device" is a thread with a private gradient buffer,
//!   and gradients are combined with a real **ring all-reduce**
//!   ([`device::ring_all_reduce`]) through shared-memory mailboxes, the
//!   same communication schedule NCCL uses.
//!
//! All primitives are deterministic: splitting is by contiguous chunks, so
//! floating-point reduction order is fixed regardless of thread timing.

pub mod device;
pub mod pool;

pub use device::{ring_all_reduce, DeviceGrid, ReduceStats};
pub use pool::ThreadPool;

/// Number of worker threads to use by default: the number of available
/// CPUs, but at least 1.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `body(i)` for every `i` in `0..n`, splitting the range into
/// `threads` contiguous chunks executed on scoped threads.
///
/// With `threads == 1` (or `n` small) the loop runs inline, so tests and
/// single-core machines pay no thread overhead.
pub fn parallel_for<F>(n: usize, threads: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        for i in 0..n {
            body(i);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        for t in 0..threads {
            let body = &body;
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(n);
            if lo >= hi {
                continue;
            }
            s.spawn(move || {
                for i in lo..hi {
                    body(i);
                }
            });
        }
    });
}

/// Map `f` over `0..n` in parallel, collecting results in index order.
pub fn par_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    {
        let slots = out.as_mut_slice();
        std::thread::scope(|s| {
            // Split the output buffer into disjoint chunks, one per worker,
            // so each thread writes only its own region (no locking).
            let mut rest = slots;
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                if lo >= hi {
                    break;
                }
                let (mine, tail) = rest.split_at_mut(hi - lo);
                rest = tail;
                let f = &f;
                s.spawn(move || {
                    for (k, slot) in mine.iter_mut().enumerate() {
                        *slot = Some(f(lo + k));
                    }
                });
            }
        });
    }
    // Every slot is filled by construction (the chunks tile 0..n); if a
    // worker panicked, the scope has already propagated that panic. The
    // fallback recompute keeps this path panic-free without assuming it.
    out.into_iter()
        .enumerate()
        .map(|(i, x)| x.unwrap_or_else(|| f(i)))
        .collect()
}

/// Parallel sum-reduction of `f(i)` over `0..n` with a deterministic
/// (chunked, left-to-right) combination order.
pub fn par_sum<F>(n: usize, threads: usize, f: F) -> f64
where
    F: Fn(usize) -> f64 + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).sum();
    }
    let chunk = n.div_ceil(threads);
    let partials = par_map(threads, threads, |t| {
        let lo = t * chunk;
        let hi = ((t + 1) * chunk).min(n);
        (lo..hi).map(&f).sum::<f64>()
    });
    partials.into_iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_visits_every_index_once() {
        for threads in [1, 2, 4, 7] {
            let n = 103;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(n, threads, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn parallel_for_empty_range() {
        parallel_for(0, 4, |_| panic!("must not be called"));
    }

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 3, 8] {
            let out = par_map(57, threads, |i| i * i);
            assert_eq!(out, (0..57).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_empty() {
        let out: Vec<usize> = par_map(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn par_sum_matches_serial() {
        let serial: f64 = (0..1000).map(|i| (i as f64).sqrt()).sum();
        for threads in [1, 2, 4] {
            let p = par_sum(1000, threads, |i| (i as f64).sqrt());
            assert!((p - serial).abs() < 1e-9, "threads={threads}: {p} vs {serial}");
        }
    }

    #[test]
    fn more_threads_than_items() {
        let out = par_map(3, 16, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
