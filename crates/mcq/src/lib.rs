//! The astronomy MCQ benchmark generator.
//!
//! Reproduces the construction of the AstroMLab benchmark (paper §IV,
//! after Ting et al. 2024): **885 review articles × 5 questions × 4
//! options = 4,425 MCQs**, built here from the synthetic world's fact
//! graph instead of Gemini-extracted ARAA content. The generator follows
//! the stated construction principles:
//!
//! * questions are standalone fact probes, independent of any one
//!   article's narrative;
//! * options are drawn from the same relation's closed value pool, so all
//!   four "are of equal length, preventing easy elimination based on
//!   superficial characteristics";
//! * the answer key position is uniform over A–D;
//! * a small held-out **exemplar set** provides the two-shot examples used
//!   by the next-token benchmarking method (exemplars are never scored).

pub mod prompts;

use astro_prng::Rng;
use astro_world::{build_options, render_question, FactTier, World};

/// Answer letters.
pub const LETTERS: [char; 4] = ['A', 'B', 'C', 'D'];

/// One multiple-choice question.
#[derive(Clone, Debug)]
pub struct Mcq {
    /// Index into the dataset.
    pub id: usize,
    /// Source article index.
    pub article: usize,
    /// The fact being probed (index into `World::facts`).
    pub fact: usize,
    /// Question text.
    pub question: String,
    /// The four options, in presentation order.
    pub options: [String; 4],
    /// Index (0–3) of the correct option.
    pub answer: usize,
    /// Tier of the probed fact (consensus questions are answerable from
    /// general pretraining; frontier/detail require CPT).
    pub tier: FactTier,
}

impl Mcq {
    /// The correct answer letter.
    pub fn answer_letter(&self) -> char {
        LETTERS[self.answer]
    }
}

/// Generation parameters.
#[derive(Clone, Debug)]
pub struct McqConfig {
    /// Questions per article (paper: 5).
    pub questions_per_article: usize,
    /// Number of questions held out as few-shot exemplars.
    pub n_exemplars: usize,
}

impl Default for McqConfig {
    fn default() -> Self {
        McqConfig {
            questions_per_article: 5,
            n_exemplars: 8,
        }
    }
}

/// The generated benchmark.
#[derive(Clone, Debug)]
pub struct McqDataset {
    /// Scored questions.
    pub questions: Vec<Mcq>,
    /// Held-out exemplars for few-shot prompting (never scored).
    pub exemplars: Vec<Mcq>,
}

impl McqDataset {
    /// Generate the benchmark from a world.
    pub fn generate(world: &World, config: &McqConfig, rng: &mut Rng) -> Self {
        let mut rng = rng.substream("mcq");
        let mut all = Vec::with_capacity(world.articles.len() * config.questions_per_article);
        for article in &world.articles {
            // Sample distinct facts from the article's coverage.
            let k = config.questions_per_article.min(article.fact_ids.len());
            let picks = rng.sample_indices(article.fact_ids.len(), k);
            for p in picks {
                let fid = article.fact_ids[p];
                let fact = &world.facts[fid];
                let entity = world.entity_of(fact);
                let (options, answer) = build_options(fact.relation.values(), fact.value, &mut rng);
                all.push(Mcq {
                    id: all.len(),
                    article: article.id,
                    fact: fid,
                    question: render_question(entity, fact.relation),
                    options: options.map(|o| o.to_string()),
                    answer,
                    tier: fact.tier,
                });
            }
        }
        // Hold out exemplars: prefer consensus questions whose fact is
        // probed by no other question, so the few-shot examples neither
        // leak frontier knowledge nor reveal answers to scored questions.
        // Small worlds reuse facts heavily; fall back to least-probed
        // consensus facts (one exemplar per fact) and accept the bounded
        // leakage, as the paper's own same-benchmark exemplars do.
        let mut fact_counts = std::collections::HashMap::new();
        for q in &all {
            *fact_counts.entry(q.fact).or_insert(0usize) += 1;
        }
        let mut unique: Vec<usize> = all
            .iter()
            .filter(|q| q.tier == FactTier::Consensus && fact_counts[&q.fact] == 1)
            .map(|q| q.id)
            .collect();
        rng.shuffle(&mut unique);
        let mut exemplar_ids: Vec<usize> = unique;
        if exemplar_ids.len() < config.n_exemplars {
            let mut fallback: Vec<&Mcq> = all
                .iter()
                .filter(|q| q.tier == FactTier::Consensus && fact_counts[&q.fact] > 1)
                .collect();
            // Deterministic order: least-probed facts first.
            fallback.sort_by_key(|q| (fact_counts[&q.fact], q.id));
            let mut used_facts: std::collections::HashSet<usize> = exemplar_ids
                .iter()
                .map(|&id| all[id].fact)
                .collect();
            for q in fallback {
                if exemplar_ids.len() >= config.n_exemplars {
                    break;
                }
                if used_facts.insert(q.fact) {
                    exemplar_ids.push(q.id);
                }
            }
        }
        exemplar_ids.truncate(config.n_exemplars);
        exemplar_ids.sort_unstable();
        let mut exemplars = Vec::with_capacity(exemplar_ids.len());
        let mut questions = Vec::with_capacity(all.len() - exemplar_ids.len());
        for q in all {
            if exemplar_ids.binary_search(&q.id).is_ok() {
                exemplars.push(q);
            } else {
                questions.push(q);
            }
        }
        // Re-number the scored questions.
        for (i, q) in questions.iter_mut().enumerate() {
            q.id = i;
        }
        McqDataset {
            questions,
            exemplars,
        }
    }

    /// Number of scored questions.
    pub fn len(&self) -> usize {
        self.questions.len()
    }

    /// True if no scored questions exist.
    pub fn is_empty(&self) -> bool {
        self.questions.is_empty()
    }

    /// A deterministic subset of the scored questions (used by the fast
    /// experiment preset; the paper always runs all 4,425).
    pub fn subset(&self, n: usize, rng: &mut Rng) -> Vec<&Mcq> {
        let n = n.min(self.questions.len());
        let idx = rng.sample_indices(self.questions.len(), n);
        idx.into_iter().map(|i| &self.questions[i]).collect()
    }

    /// Fraction of scored questions per tier, in
    /// (consensus, frontier, detail) order.
    pub fn tier_fractions(&self) -> (f64, f64, f64) {
        let total = self.questions.len().max(1) as f64;
        let count = |t: FactTier| {
            self.questions.iter().filter(|q| q.tier == t).count() as f64 / total
        };
        (
            count(FactTier::Consensus),
            count(FactTier::Frontier),
            count(FactTier::Detail),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use astro_world::WorldConfig;

    fn dataset() -> (World, McqDataset) {
        let world = World::generate(42, WorldConfig::small());
        let mut rng = Rng::seed_from(42);
        let ds = McqDataset::generate(&world, &McqConfig::default(), &mut rng);
        (world, ds)
    }

    #[test]
    fn paper_scale_counts() {
        // With the default world (885 articles × 5 questions), the scored
        // set plus exemplars must be exactly 4,425.
        let world = World::generate(1, WorldConfig::default());
        let mut rng = Rng::seed_from(1);
        let cfg = McqConfig::default();
        let ds = McqDataset::generate(&world, &cfg, &mut rng);
        assert_eq!(ds.questions.len() + ds.exemplars.len(), 885 * 5);
        assert_eq!(ds.exemplars.len(), cfg.n_exemplars);
    }

    #[test]
    fn options_contain_answer_and_are_distinct() {
        let (_, ds) = dataset();
        for q in &ds.questions {
            let mut opts = q.options.to_vec();
            assert!(q.answer < 4);
            opts.sort_unstable();
            opts.dedup();
            assert_eq!(opts.len(), 4, "question {} has duplicate options", q.id);
        }
    }

    #[test]
    fn answer_matches_world_fact() {
        let (world, ds) = dataset();
        for q in &ds.questions {
            let fact = &world.facts[q.fact];
            assert_eq!(q.options[q.answer], fact.value, "question {}", q.id);
        }
    }

    #[test]
    fn answer_positions_roughly_uniform() {
        let (_, ds) = dataset();
        let mut counts = [0usize; 4];
        for q in &ds.questions {
            counts[q.answer] += 1;
        }
        let total: usize = counts.iter().sum();
        for (i, &c) in counts.iter().enumerate() {
            let f = c as f64 / total as f64;
            assert!((f - 0.25).abs() < 0.1, "answer {} fraction {f}", LETTERS[i]);
        }
    }

    #[test]
    fn options_have_similar_lengths() {
        // Paper §IV: options crafted to be of equal length. Same-pool
        // values keep the spread small.
        let (_, ds) = dataset();
        for q in &ds.questions {
            let lens: Vec<usize> = q.options.iter().map(|o| o.len()).collect();
            let max = *lens.iter().max().unwrap();
            let min = *lens.iter().min().unwrap();
            assert!(max - min <= 10, "question {} lengths {lens:?}", q.id);
        }
    }

    #[test]
    fn exemplars_not_in_scored_set() {
        let (_, ds) = dataset();
        assert_eq!(ds.exemplars.len(), McqConfig::default().n_exemplars);
        for e in &ds.exemplars {
            assert!(
                !ds.questions
                    .iter()
                    .any(|q| q.question == e.question && q.options == e.options),
                "exemplar question duplicated verbatim in scored set"
            );
        }
        // Exemplars cover distinct facts.
        let mut facts: Vec<usize> = ds.exemplars.iter().map(|e| e.fact).collect();
        facts.sort_unstable();
        facts.dedup();
        assert_eq!(facts.len(), ds.exemplars.len());
    }

    #[test]
    fn exemplars_are_consensus_tier() {
        let (_, ds) = dataset();
        for e in &ds.exemplars {
            assert_eq!(e.tier, FactTier::Consensus);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let world = World::generate(7, WorldConfig::small());
        let mut r1 = Rng::seed_from(7);
        let mut r2 = Rng::seed_from(7);
        let a = McqDataset::generate(&world, &McqConfig::default(), &mut r1);
        let b = McqDataset::generate(&world, &McqConfig::default(), &mut r2);
        assert_eq!(a.questions.len(), b.questions.len());
        for (x, y) in a.questions.iter().zip(b.questions.iter()) {
            assert_eq!(x.question, y.question);
            assert_eq!(x.options, y.options);
            assert_eq!(x.answer, y.answer);
        }
    }

    #[test]
    fn subset_is_within_bounds_and_distinct() {
        let (_, ds) = dataset();
        let mut rng = Rng::seed_from(9);
        let sub = ds.subset(20, &mut rng);
        assert_eq!(sub.len(), 20);
        let mut ids: Vec<usize> = sub.iter().map(|q| q.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        // Requesting more than available clamps.
        let all = ds.subset(usize::MAX, &mut rng);
        assert_eq!(all.len(), ds.len());
    }

    #[test]
    fn tier_fractions_sum_to_one() {
        let (_, ds) = dataset();
        let (c, f, d) = ds.tier_fractions();
        assert!((c + f + d - 1.0).abs() < 1e-9);
        assert!(c > 0.0);
    }
}
