//! Prompt builders for the three benchmarking methods.
//!
//! * [`token_method_prompt`] — the paper's Appendix C next-token prompt:
//!   a header, two solved example questions, then the test question ending
//!   in `Answer:` so the next token should be one of A–D.
//! * [`instruct_method_messages`] — the Appendix B full-instruct chat
//!   prompt (system role-play + question + JSON output instructions).
//!
//! The MCQ rendering (`Question:` / `A:`–`D:` lines / `Answer:`) exactly
//! matches the exam-primer documents in the general pretraining corpus, so
//! models have seen the surface form — just as real LLMs have seen exam
//! formats on the web.

use crate::{Mcq, LETTERS};
use astro_world::{full_instruct_prompt, EXPERT_SYSTEM_PROMPT};

/// Header line of the token-method prompt (paper Appendix C).
pub const TOKEN_METHOD_HEADER: &str =
    "Astrophysics and Cosmology Multiple choice questions Solution set:";

/// Render one question block, optionally with its answer filled in.
///
/// Answers are stated as the winning option's *value* (this world's exam
/// convention — see `astro_world::exam_primer_doc` for why letters are an
/// ablation rather than the default at CPU scale).
pub fn render_block(q: &Mcq, with_answer: bool) -> String {
    let mut s = String::with_capacity(160);
    s.push_str("Question: ");
    s.push_str(&q.question);
    s.push('\n');
    for (letter, opt) in LETTERS.iter().zip(q.options.iter()) {
        s.push_str(&format!("{letter}: {opt}\n"));
    }
    s.push_str("Answer:");
    if with_answer {
        s.push(' ');
        s.push_str(&q.options[q.answer]);
    }
    s
}

/// Build the next-token benchmarking prompt: header, `shots` solved
/// exemplars, then the test question ending at `Answer:` (the model's next
/// token is the prediction).
pub fn token_method_prompt(test: &Mcq, exemplars: &[Mcq], shots: usize) -> String {
    let mut s = String::with_capacity(512);
    s.push_str(TOKEN_METHOD_HEADER);
    s.push('\n');
    for ex in exemplars.iter().take(shots) {
        s.push_str(&render_block(ex, true));
        s.push_str("\n\n");
    }
    s.push_str(&render_block(test, false));
    s
}

/// Chat messages for the full-instruct method: `(system, user)` texts.
/// `verbose` selects the full Appendix-B boilerplate.
pub fn instruct_method_messages(test: &Mcq, verbose: bool) -> (String, String) {
    let user = full_instruct_prompt(&test.question, &test.options, verbose);
    (EXPERT_SYSTEM_PROMPT.to_string(), user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{McqConfig, McqDataset};
    use astro_prng::Rng;
    use astro_world::{World, WorldConfig};

    fn dataset() -> McqDataset {
        let world = World::generate(5, WorldConfig::small());
        let mut rng = Rng::seed_from(5);
        McqDataset::generate(&world, &McqConfig::default(), &mut rng)
    }

    #[test]
    fn block_without_answer_ends_at_colon() {
        let ds = dataset();
        let b = render_block(&ds.questions[0], false);
        assert!(b.ends_with("Answer:"));
        assert!(b.starts_with("Question: "));
        assert!(b.contains("\nA: ") && b.contains("\nD: "));
    }

    #[test]
    fn block_with_answer_ends_with_answer_value() {
        let ds = dataset();
        let q = &ds.questions[0];
        let b = render_block(q, true);
        assert!(b.ends_with(&format!("Answer: {}", q.options[q.answer])), "{b}");
    }

    #[test]
    fn two_shot_prompt_contains_two_solved_examples() {
        let ds = dataset();
        let p = token_method_prompt(&ds.questions[0], &ds.exemplars, 2);
        assert!(p.starts_with(TOKEN_METHOD_HEADER));
        // Two answered blocks + the final unanswered one → exactly 3
        // "Answer:" occurrences, the last unanswered.
        assert_eq!(p.matches("Answer:").count(), 3);
        assert!(p.ends_with("Answer:"));
    }

    #[test]
    fn zero_shot_prompt_has_single_question() {
        let ds = dataset();
        let p = token_method_prompt(&ds.questions[1], &ds.exemplars, 0);
        assert_eq!(p.matches("Question:").count(), 1);
        assert!(p.ends_with("Answer:"));
    }

    #[test]
    fn shots_clamped_to_available_exemplars() {
        let ds = dataset();
        let p = token_method_prompt(&ds.questions[0], &ds.exemplars[..1], 5);
        assert_eq!(p.matches("Question:").count(), 2);
    }

    #[test]
    fn instruct_messages_have_system_roleplay() {
        let ds = dataset();
        let (system, user) = instruct_method_messages(&ds.questions[0], true);
        assert_eq!(system, EXPERT_SYSTEM_PROMPT);
        assert!(user.contains(&ds.questions[0].question));
        assert!(user.contains("ANSWER"));
    }
}
