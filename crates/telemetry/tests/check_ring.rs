//! Model-check the trace-ring admit/evict protocol on a private
//! [`TraceRing`] instance.
//!
//! Build with `RUSTFLAGS="--cfg astro_check"`; in normal builds this file
//! compiles to nothing. Two threads admit finished traces concurrently
//! into a capacity-1 ring while the main thread drains it. Under every
//! interleaving:
//!
//! * the ring never holds more than `ring_capacity` traces;
//! * `kept == evicted + resident` (no trace is lost or double-counted);
//! * no deadlock on the ring mutex.
#![cfg(astro_check)]

use astro_check::{explore, CheckConfig};
use astro_telemetry::sync::{self, thread, Mutex};
use astro_telemetry::trace::{TraceConfig, TraceFlags, TraceId, TraceRecord, TraceRing};
use std::sync::Arc;

fn record(seq: u128) -> TraceRecord {
    TraceRecord {
        id: TraceId(seq),
        name: format!("check-{seq}"),
        parent_span: None,
        start_us: 0,
        end_us: 1,
        status: 200,
        flags: TraceFlags::default(),
        keep: "",
        attrs: Vec::new(),
        nums: Vec::new(),
        phases: Vec::new(),
        links: Vec::new(),
    }
}

#[test]
fn concurrent_admit_keeps_ring_bounded_and_counted() {
    let report = explore(&CheckConfig::default(), || {
        let ring = Arc::new(Mutex::new(TraceRing::new(TraceConfig {
            ring_capacity: 1,
            sample_one_in: 1, // keep everything → maximal eviction pressure
            slow_keep_min_count: u64::MAX,
            retired_span_capacity: 1,
        })));

        let admitters: Vec<_> = (1..=2u128)
            .map(|seq| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    let mut rec = record(seq);
                    let (_t, mut g) = sync::lock_ranked("telemetry.trace.ring", &ring);
                    let keep = g.admit(&mut rec, false);
                    assert_eq!(keep, "sampled", "sample_one_in=1 keeps everything");
                    assert!(g.len() <= 1, "ring exceeded capacity");
                })
            })
            .collect();

        // Drain concurrently with the admitters.
        let drained_early = {
            let (_t, mut g) = sync::lock_ranked("telemetry.trace.ring", &ring);
            g.drain().len() as u64
        };

        for a in admitters {
            a.join().unwrap_or_else(|_| panic!("admitter panicked"));
        }

        let (_t, mut g) = sync::lock_ranked("telemetry.trace.ring", &ring);
        let (finished, kept, evicted) = g.counters();
        assert_eq!(finished, 2);
        assert_eq!(kept, 2);
        let resident = g.len() as u64;
        assert!(resident <= 1);
        assert_eq!(
            kept,
            evicted + drained_early + resident,
            "a kept trace was lost or double-counted"
        );
        let _ = g.drain();
    });
    assert!(report.ok(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(report.schedules > 1, "expected interleavings, got {}", report.schedules);
}
