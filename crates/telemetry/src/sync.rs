//! Swappable concurrency primitives for deterministic model checking.
//!
//! Normal builds re-export the `std` types unchanged — a zero-cost alias,
//! so production binaries pay nothing. Building the workspace with
//! `RUSTFLAGS="--cfg astro_check"` swaps every one of these names for the
//! `astro_check::sync` shim, whose operations are scheduling points for
//! the bounded model checker (see the `astro-check` crate). Protocol code
//! that wants to be model-checkable imports its `Mutex`/`Condvar`/`mpsc`/
//! `thread` from here instead of `std::sync`.
//!
//! The shim types mirror the `std` API surface used in this workspace
//! (`lock`, `wait`, `wait_timeout`, `notify_one`, `notify_all`,
//! `mpsc::channel`, `thread::Builder`/`spawn`/`JoinHandle`), so the only
//! difference between the two builds is the import path resolved here.

#[cfg(astro_check)]
pub use astro_check::sync::{mpsc, thread, Condvar, Mutex, MutexGuard, WaitTimeoutResult};

#[cfg(not(astro_check))]
pub use std::sync::{mpsc, Condvar, Mutex, MutexGuard, WaitTimeoutResult};
#[cfg(not(astro_check))]
pub use std::thread;

// Error types are `std`'s in both builds (the shim reuses them), so
// poison-recovery code is identical either way.
pub use std::sync::PoisonError;

/// Acquire a ranked [`Mutex`], recovering from poisoning.
///
/// The model-checkable counterpart of
/// [`lockcheck::lock_ranked`](crate::lockcheck::lock_ranked): identical
/// rank bookkeeping and poison recovery, but for a [`sync::Mutex`](Mutex)
/// so the acquisition is a scheduling point under `--cfg astro_check`
/// (where the lock name also labels the resource in counterexample
/// schedules). The static analyzer (`astro-audit locks`) recognises
/// `sync::lock_ranked("name", ...)` sites exactly like
/// `lockcheck::acquire("name")` ones.
pub fn lock_ranked<'a, T>(
    name: &'static str,
    mutex: &'a Mutex<T>,
) -> (crate::lockcheck::LockToken, MutexGuard<'a, T>) {
    let token = crate::lockcheck::acquire(name);
    #[cfg(astro_check)]
    mutex.name_hint(name);
    let guard = mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (token, guard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn mutex_condvar_roundtrip() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        let g = m.lock().unwrap();
        let (g2, res) = cv.wait_timeout(g, Duration::from_millis(1)).unwrap();
        assert!(res.timed_out());
        assert_eq!(*g2, 1);
    }

    #[test]
    fn lock_ranked_recovers_from_poison() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = thread::Builder::new()
            .name("sync-poisoner".into())
            .spawn(move || {
                let _g = m2.lock().unwrap();
                panic!("deliberately poison the mutex");
            })
            .unwrap()
            .join();
        let (_t, mut g) = lock_ranked("telemetry.sink", &m);
        *g += 1;
        assert_eq!(*g, 1);
    }

    #[test]
    fn channel_and_thread_shims_work() {
        let (tx, rx) = mpsc::channel::<u32>();
        let t = thread::spawn(move || {
            tx.send(7).ok();
        });
        assert_eq!(rx.recv().ok(), Some(7));
        let _ = t.join();
    }
}
