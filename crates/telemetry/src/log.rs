//! Verbosity-gated progress logging.
//!
//! `ASTRO_LOG=quiet|info|debug` (default `info`) controls what reaches
//! stderr. Structured results (tables, figures) still go to stdout via
//! plain `println!` in the binaries — this module is for *progress*
//! chatter, which tests and scripts want silenced.
//!
//! Every log line that passes the gate is also mirrored into the JSONL
//! sink as a `log` event when a sink is active, so run transcripts carry
//! their own progress history.

use crate::event::Event;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity, ordered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No progress output.
    Quiet = 0,
    /// Stage-level progress (default).
    Info = 1,
    /// Per-step detail.
    Debug = 2,
}

impl Level {
    fn from_env() -> Level {
        match std::env::var("ASTRO_LOG").as_deref() {
            Ok("quiet") | Ok("QUIET") | Ok("0") => Level::Quiet,
            Ok("debug") | Ok("DEBUG") | Ok("2") => Level::Debug,
            _ => Level::Info,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Level::Quiet => "quiet",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

// 0xff = "not yet read from the environment".
static LEVEL: AtomicU8 = AtomicU8::new(0xff);

/// The active verbosity (reads `ASTRO_LOG` once).
pub fn level() -> Level {
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Quiet,
        1 => Level::Info,
        2 => Level::Debug,
        _ => {
            let l = Level::from_env();
            LEVEL.store(l as u8, Ordering::Relaxed);
            l
        }
    }
}

/// Override the verbosity programmatically (wins over `ASTRO_LOG`).
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// True when messages at `l` should be printed.
pub fn enabled(l: Level) -> bool {
    l <= level() && l != Level::Quiet
}

/// Print `msg` to stderr when `l` passes the gate, and mirror it to the
/// JSONL sink (regardless of the gate) when a sink is active.
pub fn log(l: Level, msg: &str) {
    if enabled(l) {
        eprintln!("{msg}");
    }
    if crate::sink::is_active() {
        Event::new("log")
            .str_field("level", l.label())
            .str_field("msg", msg)
            .emit();
    }
}

/// Log at `info` with `format!` arguments.
#[macro_export]
macro_rules! info {
    ($($t:tt)*) => {
        $crate::log::log($crate::log::Level::Info, &format!($($t)*))
    };
}

/// Log at `debug` with `format!` arguments.
#[macro_export]
macro_rules! debug {
    ($($t:tt)*) => {
        $crate::log::log($crate::log::Level::Debug, &format!($($t)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_gate() {
        set_level(Level::Info);
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Quiet);
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Quiet), "quiet prints nothing, ever");
        set_level(Level::Debug);
        assert!(enabled(Level::Info) && enabled(Level::Debug));
        // Restore the default for other tests in this binary.
        set_level(Level::Info);
    }
}
