//! The global JSONL sink.
//!
//! At most one sink is active per process: either a buffered file
//! (`telemetry.jsonl` next to experiment outputs) or an in-memory buffer
//! (tests). All emitters in this crate are no-ops until [`init_file`] or
//! [`init_memory`] installs one, so instrumented library code costs one
//! atomic load per event when telemetry is off.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

enum Target {
    File(BufWriter<File>),
    Memory(Vec<String>),
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Target>> = Mutex::new(None);

/// True when a sink is installed (fast path for emitters).
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Install a file sink, truncating `path`. Replaces any previous sink
/// (flushing it first).
pub fn init_file(path: &Path) -> std::io::Result<()> {
    let file = File::create(path)?;
    install(Target::File(BufWriter::new(file)));
    Ok(())
}

/// Install an in-memory sink (used by tests).
pub fn init_memory() {
    install(Target::Memory(Vec::new()));
}

fn install(target: Target) {
    let (_order, mut sink) = crate::lockcheck::lock_ranked("telemetry.sink", &SINK);
    if let Some(Target::File(mut w)) = sink.take() {
        let _ = w.flush();
    }
    *sink = Some(target);
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Append one pre-serialised JSON line. No-op without a sink.
pub fn emit_line(line: &str) {
    if !is_active() {
        return;
    }
    let (_order, mut sink) = crate::lockcheck::lock_ranked("telemetry.sink", &SINK);
    match sink.as_mut() {
        Some(Target::File(w)) => {
            let _ = writeln!(w, "{line}");
        }
        Some(Target::Memory(lines)) => lines.push(line.to_string()),
        None => {}
    }
}

/// Drain the in-memory sink's lines (empty for a file sink or no sink).
pub fn drain_memory() -> Vec<String> {
    let (_order, mut sink) = crate::lockcheck::lock_ranked("telemetry.sink", &SINK);
    match sink.as_mut() {
        Some(Target::Memory(lines)) => std::mem::take(lines),
        _ => Vec::new(),
    }
}

/// Flush and uninstall the sink (file contents become visible on disk).
pub fn close() {
    let (_order, mut sink) = crate::lockcheck::lock_ranked("telemetry.sink", &SINK);
    if let Some(Target::File(mut w)) = sink.take() {
        let _ = w.flush();
    }
    *sink = None;
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Flush the file sink without uninstalling it.
pub fn flush() {
    let (_order, mut sink) = crate::lockcheck::lock_ranked("telemetry.sink", &SINK);
    if let Some(Target::File(w)) = sink.as_mut() {
        let _ = w.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_sink_writes_lines() {
        let dir = std::env::temp_dir().join(format!("astro-telemetry-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sink.jsonl");
        init_file(&path).unwrap();
        emit_line("{\"event\":\"a\"}");
        emit_line("{\"event\":\"b\"}");
        close();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "{\"event\":\"a\"}\n{\"event\":\"b\"}\n");
        assert!(!is_active());
        // Emitting with no sink must be a silent no-op.
        emit_line("{\"event\":\"dropped\"}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
