//! Debug-build lock-order instrumentation.
//!
//! Every long-lived lock in the workspace has a declared **rank** in
//! [`RANKS`]; a thread may only acquire a lock whose rank is *strictly
//! greater* than the highest rank it already holds. Acquisitions in
//! increasing rank order cannot form a wait cycle, so adherence rules out
//! lock-order deadlocks by construction (the classic lock-hierarchy
//! argument).
//!
//! Call [`acquire`] immediately before taking a ranked lock and keep the
//! returned [`LockToken`] alive for the critical section; dropping it
//! records the release. Under `cfg(debug_assertions)` a violation panics
//! with both lock names; in release builds the whole machinery compiles
//! to nothing.
//!
//! The same table is consumed statically: `astro-audit locks` extracts
//! the acquisition graph from source and verifies the declared ranks are
//! acyclic and every `.lock()` site is annotated.

/// One declared lock with its rank.
#[derive(Clone, Copy, Debug)]
pub struct LockRank {
    /// Stable name used at acquisition sites and in audit reports.
    pub name: &'static str,
    /// Position in the global order (higher = acquired later).
    pub rank: u32,
}

/// The global lock hierarchy. Pool internals come first (they sit at the
/// bottom of every call stack), device mailboxes and the serving-engine
/// prefix cache next, telemetry registries and the JSONL sink last — so
/// code holding a pool or cache lock may still emit telemetry, but
/// telemetry internals can never wait on the pool.
pub const RANKS: &[LockRank] = &[
    // Test-suite gates that serialise access to process-global state
    // (e.g. the fault-injection registry) sit below every runtime lock:
    // a test holds its gate for the whole test body.
    LockRank { name: "test.fault_gate", rank: 2 },
    // Gateway admission locks sit below the engine/pool locks: a request
    // handler consults the rate limiter, releases it, then pushes to the
    // queue; neither lock is ever held across an engine call, but ranking
    // them low keeps "gateway lock → engine lock → telemetry" legal.
    LockRank { name: "gateway.limiter", rank: 4 },
    LockRank { name: "gateway.queue", rank: 6 },
    LockRank { name: "parallel.pool.receiver", rank: 10 },
    LockRank { name: "parallel.pool.pending", rank: 12 },
    LockRank { name: "parallel.device.mailbox", rank: 14 },
    LockRank { name: "serve.prefix_cache", rank: 16 },
    // The trace in-flight table and ring sit below the metrics registry
    // and the sink: finishing a trace records histograms and emits a
    // JSONL line, so "trace lock → metrics → sink" must be ascending.
    LockRank { name: "telemetry.trace.inflight", rank: 17 },
    LockRank { name: "resilience.fault_plan", rank: 18 },
    LockRank { name: "telemetry.trace.ring", rank: 19 },
    LockRank { name: "telemetry.metrics.registry", rank: 20 },
    LockRank { name: "telemetry.span.registry", rank: 22 },
    LockRank { name: "telemetry.sink", rank: 30 },
];

/// Look up the declared rank of a lock name.
pub fn rank_of(name: &str) -> Option<u32> {
    RANKS.iter().find(|r| r.name == name).map(|r| r.rank)
}

#[cfg(debug_assertions)]
mod imp {
    use super::rank_of;
    use std::cell::RefCell;

    thread_local! {
        /// The ranks (and names) of locks this thread currently holds,
        /// in acquisition order.
        static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII record of one ranked acquisition.
    #[must_use = "hold the token for the critical section; dropping it records the release"]
    pub struct LockToken {
        name: &'static str,
    }

    /// Record an acquisition; panics on a rank-order violation.
    pub fn acquire(name: &'static str) -> LockToken {
        let rank = rank_of(name)
            .unwrap_or_else(|| panic!("lockcheck: {name} has no declared rank in RANKS"));
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(top_rank, top_name)) = held.last() {
                assert!(
                    rank > top_rank,
                    "lock-order violation: acquiring {name} (rank {rank}) while \
                     holding {top_name} (rank {top_rank}); locks must be taken in \
                     strictly increasing rank order"
                );
            }
            held.push((rank, name));
        });
        LockToken { name }
    }

    impl Drop for LockToken {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                // Release order may differ from acquisition order; remove
                // the most recent entry for this lock.
                if let Some(pos) = held.iter().rposition(|&(_, n)| n == self.name) {
                    held.remove(pos);
                }
            });
        }
    }

    /// How many ranked locks the current thread holds (test hook).
    pub fn held_count() -> usize {
        HELD.with(|held| held.borrow().len())
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    /// RAII record of one ranked acquisition (release build: a no-op).
    #[must_use = "hold the token for the critical section; dropping it records the release"]
    pub struct LockToken {
        _private: (),
    }

    /// Record an acquisition (release build: a no-op).
    #[inline(always)]
    pub fn acquire(_name: &'static str) -> LockToken {
        LockToken { _private: () }
    }

    /// How many ranked locks the current thread holds (release build:
    /// always 0).
    #[inline(always)]
    pub fn held_count() -> usize {
        0
    }
}

pub use imp::{acquire, held_count, LockToken};

/// Acquire a ranked mutex, recovering from poisoning.
///
/// Combines the rank check with `Mutex::lock` and maps a poisoned mutex
/// to its inner guard (`PoisonError::into_inner`): a panic on another
/// thread must never cascade into infrastructure code — the protected
/// state is simple enough that every critical section leaves it
/// structurally valid. Keep both returned values alive for the critical
/// section; the token records the release when dropped.
///
/// The static analyzer (`astro-audit locks`) recognises
/// `lockcheck::lock_ranked("name", ...)` sites exactly like
/// `lockcheck::acquire("name")` ones.
pub fn lock_ranked<'a, T>(
    name: &'static str,
    mutex: &'a std::sync::Mutex<T>,
) -> (LockToken, std::sync::MutexGuard<'a, T>) {
    let token = acquire(name);
    let guard = mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (token, guard)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_strictly_increasing_and_unique() {
        for w in RANKS.windows(2) {
            assert!(w[0].rank < w[1].rank, "{} vs {}", w[0].name, w[1].name);
        }
        let names: std::collections::HashSet<&str> = RANKS.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), RANKS.len());
    }

    #[test]
    fn increasing_order_is_accepted() {
        let a = acquire("parallel.pool.receiver");
        let b = acquire("telemetry.sink");
        assert!(held_count() <= 2);
        drop(b);
        drop(a);
        assert_eq!(held_count(), 0);
    }

    #[test]
    fn same_rank_reacquire_allowed_after_release() {
        for _ in 0..3 {
            let t = acquire("parallel.device.mailbox");
            drop(t);
        }
        assert_eq!(held_count(), 0);
    }

    #[test]
    fn out_of_order_release_is_tolerated() {
        let a = acquire("parallel.pool.pending");
        let b = acquire("telemetry.metrics.registry");
        drop(a); // released before b — must not corrupt the stack
        let c = acquire("telemetry.sink");
        drop(c);
        drop(b);
        assert_eq!(held_count(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn decreasing_order_panics_in_debug() {
        let _a = acquire("telemetry.sink");
        let _b = acquire("parallel.pool.pending");
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "no declared rank")]
    fn unknown_lock_panics_in_debug() {
        let _t = acquire("nonexistent.lock");
    }

    #[test]
    fn rank_lookup() {
        assert_eq!(rank_of("telemetry.sink"), Some(30));
        assert_eq!(rank_of("nope"), None);
    }

    #[test]
    fn lock_ranked_recovers_from_poison() {
        use std::sync::Mutex;
        static POISONED: Mutex<u32> = Mutex::new(0);
        let _ = std::thread::Builder::new()
            .name("poisoner".into())
            .spawn(|| {
                let _g = POISONED.lock().unwrap();
                panic!("deliberately poison the mutex");
            })
            .unwrap()
            .join();
        assert!(POISONED.is_poisoned());
        let (_t, mut g) = lock_ranked("telemetry.sink", &POISONED);
        *g += 1;
        assert_eq!(*g, 1);
        assert_eq!(held_count(), if cfg!(debug_assertions) { 1 } else { 0 });
    }
}
