//! Structured observability for the AstroMLab 2 reproduction.
//!
//! The study pipeline is a long multi-stage computation (pretrain natives →
//! CPT ×3 recipes → SFT → evaluate ×3 methods). This crate replaces the
//! ad-hoc `println!` progress lines with a small, dependency-free
//! telemetry substrate:
//!
//! * [`span`] — hierarchical wall-clock **spans** with a thread-safe global
//!   registry, created with the [`span!`] macro:
//!   `let _g = span!("cpt", tier = "S70b");`
//! * [`metrics`] — global **counters, gauges and fixed-bucket histograms**
//!   (tokens processed, all-reduce latency, extraction-stage hits) with
//!   p50/p95/p99 readout.
//! * [`sink`] + [`event`] — a **JSONL event sink**: every span close,
//!   metric flush and log line can be appended to a `telemetry.jsonl`
//!   file whose lines parse with the repo's own JSON-subset parser
//!   (`astro_eval::json`).
//! * [`manifest`] — a per-experiment **run manifest** (seed, preset,
//!   config hash, start/end, peak RSS) written next to experiment outputs.
//! * [`log`] — an `ASTRO_LOG=quiet|info|debug` verbosity switch gating
//!   stderr progress output (default `info`), so `cargo test -q` stays
//!   clean while bench binaries stay chatty.
//! * [`trace`] — **end-to-end request traces**: 128-bit ids minted at the
//!   gateway (or accepted via W3C `traceparent`), per-request phase
//!   attribution recorded from any thread, span links for cross-thread
//!   causality, and a bounded tail-sampling ring sink.
//! * [`summary`] — a human-readable end-of-run span/metric summary tree.
//! * [`lockcheck`] — debug-build **lock-order instrumentation**: ranked
//!   locks and a thread-local held-lock stack that panics on ordering
//!   violations, cross-checked statically by `astro-audit locks`.
//! * [`sync`] — **swappable sync primitives**: `std` re-exports normally,
//!   the `astro-check` model-checker shim under `--cfg astro_check`, so
//!   the serving stack's concurrency protocols can be exhaustively
//!   explored for deadlocks and lost wakeups.
//!
//! Everything is `std`-only, matching the repo's no-`serde`/no-`tracing`
//! design rule, and every emitter is a cheap no-op until a sink is
//! installed, so library crates can instrument unconditionally.
//!
//! # Global state and tests
//!
//! The registry, metrics and sink are process-global (that is the point:
//! instrumentation sites must not thread a context handle through every
//! call). Tests that assert on global state should use unique metric/span
//! names or the `reset_*` helpers, and must not assume exclusive ownership
//! of the sink unless they install a memory sink themselves.

pub mod event;
pub mod lockcheck;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod sink;
pub mod span;
pub mod summary;
pub mod sync;
pub mod trace;

pub use event::Event;
pub use manifest::RunManifest;
pub use metrics::{counter, gauge, histogram, histogram_with};
pub use span::SpanGuard;
pub use trace::{TraceContext, TraceId};

use std::sync::OnceLock;
use std::time::Instant;

/// The process-wide monotonic epoch every span/event timestamp is measured
/// from. First call wins; all later timestamps are relative to it.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process epoch (monotonic).
pub fn elapsed_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Seconds since the unix epoch (wall clock), 0 if the clock is unset.
pub fn unix_time_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Touch the epoch so timestamps are measured from program start rather
/// than from the first instrumented call. Binaries should call this first.
pub fn init_clock() {
    let _ = epoch();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic() {
        let a = elapsed_us();
        let b = elapsed_us();
        assert!(b >= a);
    }

    #[test]
    fn unix_time_is_plausible() {
        // After 2020-01-01, before 2100.
        let t = unix_time_secs();
        assert!(t > 1_577_836_800 && t < 4_102_444_800, "{t}");
    }
}
