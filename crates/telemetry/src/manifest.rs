//! Per-experiment run manifests.
//!
//! A manifest records what a run *was* — binary, preset, seed, a hash of
//! the full config, wall-clock interval, peak RSS — so an output directory
//! is self-describing and two runs can be compared without spelunking
//! through shell history. Written as a single JSON object (same subset the
//! in-repo parser reads) next to the experiment outputs.

use crate::event::write_json_string;
use std::io::Write;
use std::path::Path;

/// 64-bit FNV-1a (the repo's standard content hash: no dependency, stable
/// across platforms).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`), 0
/// when unavailable (non-Linux hosts).
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
        }
    }
    0
}

/// One experiment run's identity and resource envelope.
#[derive(Clone, Debug)]
pub struct RunManifest {
    /// Binary name (`table1`, `costs`, …).
    pub binary: String,
    /// Preset label (`smoke|fast|full`).
    pub preset: String,
    /// Master seed.
    pub seed: u64,
    /// FNV-1a hash (hex) of the full config's `Debug` representation —
    /// changes whenever any knob changes, like a `git describe` for the
    /// configuration.
    pub config_hash: String,
    /// Unix seconds at start.
    pub started_unix: u64,
    /// Unix seconds at finish (0 while running).
    pub ended_unix: u64,
    /// Wall-clock seconds (0 while running).
    pub wall_secs: f64,
    /// Peak RSS in kB at finish.
    pub peak_rss_kb: u64,
    /// Threads the host exposes.
    pub host_threads: usize,
    /// Free-form extra fields (stage stats, output files, …).
    pub extra: Vec<(String, String)>,
    start: std::time::Instant,
}

impl RunManifest {
    /// Start a manifest; `config_repr` is hashed (pass the config's
    /// `Debug` formatting).
    pub fn begin(binary: &str, preset: &str, seed: u64, config_repr: &str) -> RunManifest {
        crate::init_clock();
        RunManifest {
            binary: binary.to_string(),
            preset: preset.to_string(),
            seed,
            config_hash: format!("{:016x}", fnv1a_64(config_repr.as_bytes())),
            started_unix: crate::unix_time_secs(),
            ended_unix: 0,
            wall_secs: 0.0,
            peak_rss_kb: 0,
            host_threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            extra: Vec::new(),
            start: std::time::Instant::now(),
        }
    }

    /// Attach an extra key/value pair.
    pub fn add(&mut self, key: &str, value: &str) {
        self.extra.push((key.to_string(), value.to_string()));
    }

    /// Stamp the end time and resource peaks.
    pub fn finish(&mut self) {
        self.ended_unix = crate::unix_time_secs();
        self.wall_secs = self.start.elapsed().as_secs_f64();
        self.peak_rss_kb = peak_rss_kb();
    }

    /// Serialise as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let field = |out: &mut String, k: &str, v: &str, raw: bool| {
            if out.len() > 1 {
                out.push(',');
            }
            write_json_string(out, k);
            out.push(':');
            if raw {
                out.push_str(v);
            } else {
                write_json_string(out, v);
            }
        };
        field(&mut out, "binary", &self.binary, false);
        field(&mut out, "preset", &self.preset, false);
        field(&mut out, "seed", &self.seed.to_string(), true);
        field(&mut out, "config_hash", &self.config_hash, false);
        field(&mut out, "started_unix", &self.started_unix.to_string(), true);
        field(&mut out, "ended_unix", &self.ended_unix.to_string(), true);
        field(&mut out, "wall_secs", &format!("{:.3}", self.wall_secs), true);
        field(&mut out, "peak_rss_kb", &self.peak_rss_kb.to_string(), true);
        field(&mut out, "host_threads", &self.host_threads.to_string(), true);
        for (k, v) in &self.extra {
            field(&mut out, k, v, false);
        }
        out.push('}');
        out
    }

    /// Write the manifest to `path` (overwrites).
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn peak_rss_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }

    #[test]
    fn manifest_lifecycle_and_json() {
        let mut m = RunManifest::begin("table1", "fast", 42, "StudyConfig { seed: 42 }");
        m.add("outputs", "telemetry.jsonl");
        std::thread::sleep(std::time::Duration::from_millis(2));
        m.finish();
        assert!(m.ended_unix >= m.started_unix);
        assert!(m.wall_secs > 0.0);
        let j = m.to_json();
        assert!(j.contains("\"binary\":\"table1\""), "{j}");
        assert!(j.contains("\"seed\":42"), "{j}");
        assert!(j.contains("\"outputs\":\"telemetry.jsonl\""), "{j}");
        assert_eq!(m.config_hash.len(), 16);
        // Same config → same hash; different config → different hash.
        let m2 = RunManifest::begin("table1", "fast", 42, "StudyConfig { seed: 42 }");
        assert_eq!(m.config_hash, m2.config_hash);
        let m3 = RunManifest::begin("table1", "fast", 43, "StudyConfig { seed: 43 }");
        assert_ne!(m.config_hash, m3.config_hash);
    }
}
