//! Structured events and their JSONL encoding.
//!
//! An [`Event`] is a named bag of typed fields serialised as one JSON
//! object per line. The encoder emits only the JSON subset the repo's own
//! parser (`astro_eval::json`) accepts: objects, strings with
//! `\n \t \r \" \\` escapes, finite numbers, booleans and `null`.
//! Control characters outside that escape set are replaced with a space so
//! every emitted line is guaranteed to round-trip.

use crate::sink;

/// A field value. Non-finite floats serialise as `null` (JSON has no NaN).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// A float.
    F64(f64),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A boolean.
    Bool(bool),
}

/// One structured event destined for the JSONL sink.
#[derive(Clone, Debug)]
pub struct Event {
    /// Event name, e.g. `train.step` or `span_end`.
    pub name: String,
    /// Ordered fields (serialisation preserves insertion order).
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Start building an event.
    pub fn new(name: &str) -> Event {
        Event {
            name: name.to_string(),
            fields: Vec::new(),
        }
    }

    /// Attach a string field.
    #[must_use]
    pub fn str_field(mut self, key: &str, v: &str) -> Self {
        self.fields.push((key.to_string(), Value::Str(v.to_string())));
        self
    }

    /// Attach a float field.
    #[must_use]
    pub fn f64_field(mut self, key: &str, v: f64) -> Self {
        self.fields.push((key.to_string(), Value::F64(v)));
        self
    }

    /// Attach an unsigned integer field.
    #[must_use]
    pub fn u64_field(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.to_string(), Value::U64(v)));
        self
    }

    /// Attach a signed integer field.
    #[must_use]
    pub fn i64_field(mut self, key: &str, v: i64) -> Self {
        self.fields.push((key.to_string(), Value::I64(v)));
        self
    }

    /// Attach a boolean field.
    #[must_use]
    pub fn bool_field(mut self, key: &str, v: bool) -> Self {
        self.fields.push((key.to_string(), Value::Bool(v)));
        self
    }

    /// Serialise as a single-line JSON object with an `event` name and a
    /// monotonic `t_us` timestamp field.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        out.push_str("{\"event\":");
        write_json_string(&mut out, &self.name);
        out.push_str(",\"t_us\":");
        out.push_str(&crate::elapsed_us().to_string());
        for (k, v) in &self.fields {
            out.push(',');
            write_json_string(&mut out, k);
            out.push(':');
            write_value(&mut out, v);
        }
        out.push('}');
        out
    }

    /// Serialise and append to the active sink (no-op when none).
    pub fn emit(self) {
        if sink::is_active() {
            sink::emit_line(&self.to_json());
        }
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Str(s) => write_json_string(out, s),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&format_f64(*x));
            } else {
                out.push_str("null");
            }
        }
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

/// Format a finite f64 so it parses back as a JSON number (no exponent
/// notation is produced by Rust's `Display`, which is what we rely on).
fn format_f64(x: f64) -> String {
    let s = format!("{x}");
    debug_assert!(!s.contains("inf") && !s.contains("NaN"));
    s
}

/// Append `s` as a JSON string literal using only the escapes the in-repo
/// parser understands (`\n \t \r \" \\`); other C0 control characters are
/// replaced by a space.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push(' '),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn escaped(s: &str) -> String {
        let mut out = String::new();
        write_json_string(&mut out, s);
        out
    }

    #[test]
    fn escapes_supported_controls() {
        assert_eq!(escaped("a\"b"), r#""a\"b""#);
        assert_eq!(escaped("a\\b"), r#""a\\b""#);
        assert_eq!(escaped("a\nb\tc\rd"), r#""a\nb\tc\rd""#);
    }

    #[test]
    fn replaces_unsupported_controls() {
        assert_eq!(escaped("a\u{1}b"), "\"a b\"");
    }

    #[test]
    fn unicode_passes_through() {
        assert_eq!(escaped("σ Ori ☉"), "\"σ Ori ☉\"");
    }

    #[test]
    fn event_json_shape() {
        let e = Event::new("train.step")
            .u64_field("step", 7)
            .f64_field("loss", 1.5)
            .str_field("stage", "cpt")
            .bool_field("bf16", true)
            .i64_field("delta", -3);
        let j = e.to_json();
        assert!(j.starts_with("{\"event\":\"train.step\",\"t_us\":"), "{j}");
        assert!(j.contains("\"step\":7"), "{j}");
        assert!(j.contains("\"loss\":1.5"), "{j}");
        assert!(j.contains("\"stage\":\"cpt\""), "{j}");
        assert!(j.contains("\"bf16\":true"), "{j}");
        assert!(j.contains("\"delta\":-3"), "{j}");
        assert!(j.ends_with('}'), "{j}");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let j = Event::new("x").f64_field("bad", f64::NAN).to_json();
        assert!(j.contains("\"bad\":null"), "{j}");
    }
}
