//! Hierarchical wall-clock spans with a thread-safe global registry.
//!
//! A span measures one stage of the pipeline (`study.cpt`,
//! `eval.full_instruct`, …). Spans nest: each thread keeps a stack of open
//! spans, and a new span's parent is whatever is on top of the creating
//! thread's stack. Spans opened on worker threads therefore become roots —
//! the registry is shared, the *nesting* is per thread, which is the
//! honest structure for fork/join parallelism.
//!
//! Closing a span (RAII drop) stamps its end time, emits a `span_end`
//! event to the sink, and leaves the record in the registry for the
//! end-of-run summary tree ([`crate::summary`]).

use crate::event::Event;
use std::cell::RefCell;
use std::sync::Mutex;

/// One recorded span. `end_us` is `None` while the span is open.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Registry index (also the span id).
    pub id: usize,
    /// Parent span id, if any (same-thread nesting only).
    pub parent: Option<usize>,
    /// Span name, e.g. `study.cpt`.
    pub name: String,
    /// String attributes attached at creation (`tier = "S70b"`).
    pub attrs: Vec<(String, String)>,
    /// Numeric measurements recorded during the span (`tokens`, …).
    pub nums: Vec<(String, f64)>,
    /// Start, microseconds since process epoch.
    pub start_us: u64,
    /// End, microseconds since process epoch.
    pub end_us: Option<u64>,
}

impl SpanRecord {
    /// Wall-clock duration in microseconds (up to now if still open).
    pub fn duration_us(&self) -> u64 {
        self.end_us.unwrap_or_else(crate::elapsed_us).saturating_sub(self.start_us)
    }

    /// Look up a numeric measurement by key.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.nums.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

static REGISTRY: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

thread_local! {
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard: the span closes when the guard drops.
#[must_use = "a span closes when its guard drops; bind it with `let _g = ...`"]
pub struct SpanGuard {
    id: usize,
}

/// Open a span with no attributes.
pub fn span(name: &str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Open a span with string attributes.
pub fn span_with(name: &str, attrs: Vec<(String, String)>) -> SpanGuard {
    let start_us = crate::elapsed_us();
    let parent = STACK.with(|s| s.borrow().last().copied());
    let id = {
        let (_order, mut reg) =
            crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
        let id = reg.len();
        reg.push(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            attrs,
            nums: Vec::new(),
            start_us,
            end_us: None,
        });
        id
    };
    STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard { id }
}

impl SpanGuard {
    /// The span's registry id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Record a numeric measurement on the open span (e.g. tokens
    /// processed, so the summary can derive a rate over the span's wall
    /// time).
    pub fn record_f64(&self, key: &str, v: f64) {
        let (_order, mut reg) =
            crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
        let Some(rec) = reg.get_mut(self.id) else { return };
        if let Some(slot) = rec.nums.iter_mut().find(|(k, _)| k == key) {
            slot.1 = v;
        } else {
            rec.nums.push((key.to_string(), v));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_us = crate::elapsed_us();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        // Copy what the event needs, then release the lock before emitting.
        // A guard outliving a `reset()` finds no record; close silently.
        let (name, attrs, nums, dur_us) = {
            let (_order, mut reg) =
                crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
            match reg.get_mut(self.id) {
                Some(rec) => {
                    rec.end_us = Some(end_us);
                    (
                        rec.name.clone(),
                        rec.attrs.clone(),
                        rec.nums.clone(),
                        end_us.saturating_sub(rec.start_us),
                    )
                }
                None => return,
            }
        };
        if crate::sink::is_active() {
            let mut e = Event::new("span_end")
                .str_field("span", &name)
                .u64_field("dur_us", dur_us);
            for (k, v) in &attrs {
                e = e.str_field(k, v);
            }
            for (k, v) in &nums {
                e = e.f64_field(k, *v);
            }
            e.emit();
        }
    }
}

/// Open a span, optionally with `key = value` attributes (values are
/// formatted with `Display`):
///
/// ```
/// let _g = astro_telemetry::span!("cpt", tier = "S70b", steps = 200);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::span::span_with(
            $name,
            vec![$((stringify!($k).to_string(), $v.to_string())),+],
        )
    };
}

/// Snapshot the registry (open spans included).
pub fn snapshot() -> Vec<SpanRecord> {
    let (_order, reg) = crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
    reg.clone()
}

/// Clear the registry and the calling thread's span stack (tests and
/// multi-run binaries).
pub fn reset() {
    let (_order, mut reg) = crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
    reg.clear();
    drop(reg);
    drop(_order);
    STACK.with(|s| s.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test owns all assertions about the shared registry to avoid
    /// cross-test interference on the global state.
    #[test]
    fn nesting_timing_and_records() {
        let (outer_id, inner_id) = {
            let outer = crate::span!("outer", tier = "S7b");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let inner = crate::span!("inner");
            inner.record_f64("tokens", 1000.0);
            inner.record_f64("tokens", 2000.0); // overwrite, not duplicate
            (outer.id(), inner.id())
        };
        let spans = snapshot();
        let outer = spans.iter().find(|s| s.id == outer_id).unwrap();
        let inner = spans.iter().find(|s| s.id == inner_id).unwrap();

        // Nesting: inner's parent is outer; outer is a root.
        assert_eq!(inner.parent, Some(outer_id));
        assert!(outer.parent.is_none());
        assert_eq!(outer.attrs, vec![("tier".to_string(), "S7b".to_string())]);

        // Timing monotonicity: start <= inner start <= inner end <= outer end.
        let (os, oe) = (outer.start_us, outer.end_us.unwrap());
        let (is_, ie) = (inner.start_us, inner.end_us.unwrap());
        assert!(os <= is_ && is_ <= ie && ie <= oe, "{os} {is_} {ie} {oe}");
        assert!(outer.duration_us() >= inner.duration_us());
        assert!(outer.duration_us() >= 2000, "slept 2ms: {}", outer.duration_us());

        // Recorded numbers: overwritten, not duplicated.
        assert_eq!(inner.num("tokens"), Some(2000.0));
        assert_eq!(inner.nums.len(), 1);

        // Spans opened on another thread are roots.
        let handle = std::thread::spawn(|| {
            let g = crate::span!("worker");
            g.id()
        });
        let worker_id = handle.join().unwrap();
        let spans = snapshot();
        let worker = spans.iter().find(|s| s.id == worker_id).unwrap();
        assert!(worker.parent.is_none());
    }

    #[test]
    fn open_span_duration_grows() {
        let g = span("open");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let d1 = snapshot().iter().find(|s| s.id == g.id()).unwrap().duration_us();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let d2 = snapshot().iter().find(|s| s.id == g.id()).unwrap().duration_us();
        assert!(d2 > d1);
    }
}
