//! Hierarchical wall-clock spans with a thread-safe, **bounded** global
//! registry.
//!
//! A span measures one stage of the pipeline (`study.cpt`,
//! `eval.full_instruct`, …). Spans nest: each thread keeps a stack of open
//! spans, and a new span's parent is whatever is on top of the creating
//! thread's stack. Spans opened on worker threads therefore become roots
//! there — unless opened with [`span_child_of`], which takes an
//! **explicit parent** span id so cross-thread causality (a gateway batch
//! dispatching engine work on a worker) survives in the tree.
//!
//! Closing a span (RAII drop) stamps its end time, emits a `span_end`
//! event to the sink, and leaves the record in the registry for the
//! end-of-run summary tree ([`crate::summary`]). The registry holds at
//! most [`set_capacity`] records: once over capacity, the oldest *closed*
//! spans retire into the bounded ring in [`crate::trace`]
//! ([`crate::trace::retired_spans`]), so a long-running server does not
//! leak span memory. Span ids are stable across retirement (they are
//! allocation-ordered, not positional).

use crate::event::Event;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One recorded span. `end_us` is `None` while the span is open.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Allocation-ordered span id (stable across registry retirement).
    pub id: usize,
    /// Parent span id, if any (same-thread nesting, or explicit via
    /// [`span_child_of`]).
    pub parent: Option<usize>,
    /// Span name, e.g. `study.cpt`.
    pub name: String,
    /// String attributes attached at creation (`tier = "S70b"`).
    pub attrs: Vec<(String, String)>,
    /// Numeric measurements recorded during the span (`tokens`, …).
    pub nums: Vec<(String, f64)>,
    /// Start, microseconds since process epoch.
    pub start_us: u64,
    /// End, microseconds since process epoch.
    pub end_us: Option<u64>,
    /// The trace this span belongs to, if any.
    pub trace: Option<u128>,
    /// Linked trace ids: traces this span carried across a thread
    /// boundary (a `gateway.batch` span links every member request).
    pub links: Vec<u128>,
}

impl SpanRecord {
    /// Wall-clock duration in microseconds (up to now if still open).
    pub fn duration_us(&self) -> u64 {
        self.end_us.unwrap_or_else(crate::elapsed_us).saturating_sub(self.start_us)
    }

    /// Look up a numeric measurement by key.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.nums.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Default registry capacity; override with [`set_capacity`].
pub const DEFAULT_SPAN_CAPACITY: usize = 8192;

struct Registry {
    /// Live records; `spans[i]` has id `base + i`.
    spans: VecDeque<SpanRecord>,
    /// Id of the oldest record still in `spans`.
    base: usize,
    /// Retirement threshold.
    capacity: usize,
}

impl Registry {
    fn get_mut(&mut self, id: usize) -> Option<&mut SpanRecord> {
        let idx = id.checked_sub(self.base)?;
        self.spans.get_mut(idx)
    }
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    spans: VecDeque::new(),
    base: 0,
    capacity: DEFAULT_SPAN_CAPACITY,
});

/// Pop closed spans off the front while over capacity. Only a contiguous
/// closed prefix retires (ids are `base`-offset positions, so retirement
/// must not punch holes); a long-open front span pins what follows, which
/// is bounded by the number of live guards.
fn retire_excess(reg: &mut Registry) -> Vec<SpanRecord> {
    let mut retired = Vec::new();
    while reg.spans.len() > reg.capacity {
        match reg.spans.front() {
            Some(front) if front.end_us.is_some() => {
                if let Some(s) = reg.spans.pop_front() {
                    reg.base += 1;
                    retired.push(s);
                }
            }
            _ => break,
        }
    }
    retired
}

thread_local! {
    static STACK: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard: the span closes when the guard drops.
#[must_use = "a span closes when its guard drops; bind it with `let _g = ...`"]
pub struct SpanGuard {
    id: usize,
}

/// Open a span with no attributes.
pub fn span(name: &str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Open a span with string attributes; the parent is the top of the
/// calling thread's span stack.
pub fn span_with(name: &str, attrs: Vec<(String, String)>) -> SpanGuard {
    let parent = STACK.with(|s| s.borrow().last().copied());
    open(name, attrs, parent)
}

/// Open a span with an **explicit parent** span id instead of the
/// thread-local stack — the cross-thread causality primitive: a worker
/// executing on behalf of a span opened elsewhere passes that span's id.
pub fn span_child_of(name: &str, parent: Option<usize>, attrs: Vec<(String, String)>) -> SpanGuard {
    open(name, attrs, parent)
}

fn open(name: &str, attrs: Vec<(String, String)>, parent: Option<usize>) -> SpanGuard {
    let start_us = crate::elapsed_us();
    let id = {
        let (_order, mut reg) =
            crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
        let id = reg.base + reg.spans.len();
        reg.spans.push_back(SpanRecord {
            id,
            parent,
            name: name.to_string(),
            attrs,
            nums: Vec::new(),
            start_us,
            end_us: None,
            trace: None,
            links: Vec::new(),
        });
        id
    };
    STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard { id }
}

impl SpanGuard {
    /// The span's registry id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Record a numeric measurement on the open span (e.g. tokens
    /// processed, so the summary can derive a rate over the span's wall
    /// time).
    pub fn record_f64(&self, key: &str, v: f64) {
        let (_order, mut reg) =
            crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
        let Some(rec) = reg.get_mut(self.id) else { return };
        if let Some(slot) = rec.nums.iter_mut().find(|(k, _)| k == key) {
            slot.1 = v;
        } else {
            rec.nums.push((key.to_string(), v));
        }
    }

    /// Associate the span with a trace.
    pub fn set_trace(&self, trace: u128) {
        let (_order, mut reg) =
            crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
        if let Some(rec) = reg.get_mut(self.id) {
            rec.trace = Some(trace);
        }
    }

    /// Add a **span link**: this span carried work belonging to `trace`
    /// (a batch span links every member request's trace across the
    /// scheduler thread boundary). Idempotent per trace id.
    pub fn link_trace(&self, trace: u128) {
        let (_order, mut reg) =
            crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
        let Some(rec) = reg.get_mut(self.id) else { return };
        if !rec.links.contains(&trace) {
            rec.links.push(trace);
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end_us = crate::elapsed_us();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        // Copy what the event needs, then release the lock before emitting.
        // A guard outliving a `reset()` finds no record; close silently.
        let (info, retired) = {
            let (_order, mut reg) =
                crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
            let info = match reg.get_mut(self.id) {
                Some(rec) => {
                    rec.end_us = Some(end_us);
                    Some((
                        rec.name.clone(),
                        rec.attrs.clone(),
                        rec.nums.clone(),
                        end_us.saturating_sub(rec.start_us),
                        rec.trace,
                        rec.links.len(),
                    ))
                }
                None => None,
            };
            // Retire past-capacity closed spans now that this one closed
            // (outside the lock below: the trace ring has a lower rank).
            (info, retire_excess(&mut reg))
        };
        if !retired.is_empty() {
            crate::trace::retire_spans(retired);
        }
        let Some((name, attrs, nums, dur_us, trace, links)) = info else { return };
        if crate::sink::is_active() {
            let mut e = Event::new("span_end")
                .str_field("span", &name)
                .u64_field("dur_us", dur_us);
            if let Some(t) = trace {
                e = e.str_field("trace", &crate::trace::TraceId(t).to_hex());
            }
            if links > 0 {
                e = e.u64_field("links", links as u64);
            }
            for (k, v) in &attrs {
                e = e.str_field(k, v);
            }
            for (k, v) in &nums {
                e = e.f64_field(k, *v);
            }
            e.emit();
        }
    }
}

/// Open a span, optionally with `key = value` attributes (values are
/// formatted with `Display`):
///
/// ```
/// let _g = astro_telemetry::span!("cpt", tier = "S70b", steps = 200);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::span($name)
    };
    ($name:expr, $($k:ident = $v:expr),+ $(,)?) => {
        $crate::span::span_with(
            $name,
            vec![$((stringify!($k).to_string(), $v.to_string())),+],
        )
    };
}

/// Set the registry's retirement threshold (min 16). Shrinking retires
/// immediately; retired spans land in [`crate::trace::retired_spans`].
pub fn set_capacity(capacity: usize) {
    let retired = {
        let (_order, mut reg) =
            crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
        reg.capacity = capacity.max(16);
        retire_excess(&mut reg)
    };
    crate::trace::retire_spans(retired);
}

/// Snapshot the live registry (open spans included; retired spans are in
/// [`crate::trace::retired_spans`]).
pub fn snapshot() -> Vec<SpanRecord> {
    let (_order, reg) = crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
    reg.spans.iter().cloned().collect()
}

/// Clear the registry and the calling thread's span stack (tests and
/// multi-run binaries). Capacity is kept; ids restart from 0.
pub fn reset() {
    let (_order, mut reg) = crate::lockcheck::lock_ranked("telemetry.span.registry", &REGISTRY);
    reg.spans.clear();
    reg.base = 0;
    drop(reg);
    drop(_order);
    STACK.with(|s| s.borrow_mut().clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test owns all assertions about the shared registry to avoid
    /// cross-test interference on the global state.
    #[test]
    fn nesting_timing_and_records() {
        let (outer_id, inner_id) = {
            let outer = crate::span!("outer", tier = "S7b");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let inner = crate::span!("inner");
            inner.record_f64("tokens", 1000.0);
            inner.record_f64("tokens", 2000.0); // overwrite, not duplicate
            (outer.id(), inner.id())
        };
        let spans = snapshot();
        let outer = spans.iter().find(|s| s.id == outer_id).unwrap();
        let inner = spans.iter().find(|s| s.id == inner_id).unwrap();

        // Nesting: inner's parent is outer; outer is a root.
        assert_eq!(inner.parent, Some(outer_id));
        assert!(outer.parent.is_none());
        assert_eq!(outer.attrs, vec![("tier".to_string(), "S7b".to_string())]);

        // Timing monotonicity: start <= inner start <= inner end <= outer end.
        let (os, oe) = (outer.start_us, outer.end_us.unwrap());
        let (is_, ie) = (inner.start_us, inner.end_us.unwrap());
        assert!(os <= is_ && is_ <= ie && ie <= oe, "{os} {is_} {ie} {oe}");
        assert!(outer.duration_us() >= inner.duration_us());
        assert!(outer.duration_us() >= 2000, "slept 2ms: {}", outer.duration_us());

        // Recorded numbers: overwritten, not duplicated.
        assert_eq!(inner.num("tokens"), Some(2000.0));
        assert_eq!(inner.nums.len(), 1);

        // Spans opened on another thread are roots.
        let handle = std::thread::spawn(|| {
            let g = crate::span!("worker");
            g.id()
        });
        let worker_id = handle.join().unwrap();
        let spans = snapshot();
        let worker = spans.iter().find(|s| s.id == worker_id).unwrap();
        assert!(worker.parent.is_none());
    }

    #[test]
    fn open_span_duration_grows() {
        let g = span("open");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let d1 = snapshot().iter().find(|s| s.id == g.id()).unwrap().duration_us();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let d2 = snapshot().iter().find(|s| s.id == g.id()).unwrap().duration_us();
        assert!(d2 > d1);
    }

    #[test]
    fn explicit_parent_crosses_threads() {
        let root = span("xthread.root");
        let root_id = root.id();
        let child_id = std::thread::spawn(move || {
            // On a fresh thread the stack is empty; the explicit parent
            // still attaches this span under the root.
            let g = span_child_of("xthread.child", Some(root_id), Vec::new());
            g.link_trace(0xabc);
            g.link_trace(0xabc); // idempotent
            g.set_trace(0xdef);
            g.id()
        })
        .join()
        .unwrap();
        drop(root);
        let spans = snapshot();
        let child = spans.iter().find(|s| s.id == child_id).unwrap();
        assert_eq!(child.parent, Some(root_id));
        assert_eq!(child.links, vec![0xabc]);
        assert_eq!(child.trace, Some(0xdef));
    }

    /// Retirement policy on a local registry (the global one is shared
    /// with concurrently running tests, so capacity is not shrunk here).
    #[test]
    fn retire_excess_pops_only_closed_prefix_and_keeps_ids_stable() {
        let mk = |id: usize, closed: bool| SpanRecord {
            id,
            parent: None,
            name: format!("s{id}"),
            attrs: Vec::new(),
            nums: Vec::new(),
            start_us: id as u64,
            end_us: closed.then_some(id as u64 + 1),
            trace: None,
            links: Vec::new(),
        };
        let mut reg = Registry { spans: VecDeque::new(), base: 0, capacity: 2 };
        for (id, closed) in [(0, true), (1, true), (2, false), (3, true), (4, true)] {
            reg.spans.push_back(mk(id, closed));
        }
        let retired = retire_excess(&mut reg);
        // 0 and 1 retire; 2 is open and pins 3 and 4 despite capacity 2.
        assert_eq!(retired.iter().map(|s| s.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(reg.base, 2);
        assert_eq!(reg.spans.len(), 3);
        // Ids remain addressable after the base shift.
        assert_eq!(reg.get_mut(3).map(|s| s.id), Some(3));
        assert!(reg.get_mut(1).is_none(), "retired id no longer addressable");
        assert!(reg.get_mut(99).is_none());
        // Closing the pin lets the rest retire.
        if let Some(s) = reg.get_mut(2) {
            s.end_us = Some(10);
        }
        let retired = retire_excess(&mut reg);
        assert_eq!(retired.iter().map(|s| s.id).collect::<Vec<_>>(), vec![2]);
        assert_eq!(reg.base, 3);
        assert_eq!(reg.spans.len(), 2);
    }
}
