//! End-to-end request tracing with cross-thread causality.
//!
//! A **trace** follows one request through every thread it touches: the
//! gateway handler that accepts it, the scheduler that batches it, the
//! engine worker that executes it, and back. Spans ([`crate::span`])
//! cannot do this alone — they nest per-thread — so a trace is keyed by a
//! process-unique 128-bit [`TraceId`] minted at the edge (or accepted
//! from an inbound W3C `traceparent` header) and carried by value across
//! thread boundaries.
//!
//! The unit of attribution is the **phase**: a named `[start_us, end_us]`
//! interval ([`Phase`]) recorded against the trace from whichever thread
//! is doing the work (`queue_wait`, `batch_form`, `cache_lookup`,
//! `prefill`, `decode`, `extract`, `write`, …). Phases recorded with
//! [`phase_since_last`] tile the request's wall time exactly, so the sum
//! of phase durations accounts for the end-to-end latency — the property
//! the `gateway_load` bench asserts.
//!
//! Finished traces flow into a **bounded ring buffer** with tail-based
//! sampling: error, deadline-missed, fault-marked and slowest-p1% traces
//! are always kept, the rest are sampled 1-in-N ([`TraceConfig`]). Kept
//! traces are also emitted to the JSONL sink as single-line `trace`
//! events that the `astro-trace` analyzer reads back. Memory is bounded
//! no matter how long the server runs: the ring evicts oldest-first, and
//! the span registry retires closed spans here (see
//! [`crate::span::set_capacity`]) instead of growing without bound.

use crate::span::SpanRecord;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A 128-bit trace identifier (non-zero, per the W3C trace-context rule).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u128);

impl TraceId {
    /// Render as 32 lowercase hex digits (the `traceparent` wire form).
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse 32 lowercase hex digits; rejects the all-zero id.
    pub fn from_hex(s: &str) -> Option<TraceId> {
        if s.len() != 32 || !s.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
            return None;
        }
        match u128::from_str_radix(s, 16) {
            Ok(0) | Err(_) => None,
            Ok(v) => Some(TraceId(v)),
        }
    }
}

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Trace context carried by value into the serving engine: the request's
/// trace plus the span (e.g. `gateway.batch`) the engine-side span should
/// claim as its explicit cross-thread parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// The request's trace id.
    pub trace: TraceId,
    /// Explicit parent span id for engine-side spans, if any.
    pub parent_span: Option<usize>,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mint a process-unique trace id: a counter (uniqueness) mixed with the
/// wall clock and pid (cross-process dispersion).
pub fn mint() -> TraceId {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let salt = crate::unix_time_secs() ^ u64::from(std::process::id()).rotate_left(32);
    let hi = splitmix64(n ^ salt);
    let lo = splitmix64(n.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ salt.rotate_left(17));
    let id = (u128::from(hi) << 64) | u128::from(lo);
    TraceId(if id == 0 { 1 } else { id })
}

/// Parse a W3C `traceparent` header value
/// (`00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>`). Returns the
/// trace id and the remote parent span id. Rejects version `ff`, zero
/// ids, and malformed fields.
pub fn parse_traceparent(header: &str) -> Option<(TraceId, u64)> {
    let mut parts = header.trim().split('-');
    let (ver, trace, parent, flags) =
        (parts.next()?, parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() && ver == "00" {
        return None; // version 00 has exactly four fields
    }
    if ver.len() != 2 || ver == "ff" || !ver.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    if flags.len() != 2 || !flags.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let trace = TraceId::from_hex(trace)?;
    if parent.len() != 16 || !parent.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')) {
        return None;
    }
    match u64::from_str_radix(parent, 16) {
        Ok(0) | Err(_) => None,
        Ok(p) => Some((trace, p)),
    }
}

/// Render a `traceparent` header value for a trace and a span id, with
/// the sampled flag set.
pub fn format_traceparent(trace: TraceId, span: u64) -> String {
    format!("00-{:032x}-{span:016x}-01", trace.0)
}

/// One attributed interval of a request's lifetime.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Phase {
    /// Phase name (`queue_wait`, `prefill`, …).
    pub name: &'static str,
    /// Start, microseconds since process epoch.
    pub start_us: u64,
    /// End, microseconds since process epoch.
    pub end_us: u64,
}

impl Phase {
    /// Phase duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// Why a finished trace escaped sampling (tail-based keep reasons).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceFlags {
    /// Request failed (5xx status or aborted before a response).
    pub error: bool,
    /// Request missed its deadline (504).
    pub deadline: bool,
    /// An injected fault fired on this request's path.
    pub fault: bool,
    /// End-to-end latency at or above the running p99.
    pub slow: bool,
}

/// One complete (or in-flight) request trace.
#[derive(Clone, Debug)]
pub struct TraceRecord {
    /// The trace id.
    pub id: TraceId,
    /// Root operation name, e.g. `gateway./v1/score`.
    pub name: String,
    /// Remote parent span id from an inbound `traceparent`, if any.
    pub parent_span: Option<u64>,
    /// Start, microseconds since process epoch.
    pub start_us: u64,
    /// End, microseconds since process epoch (0 while in flight).
    pub end_us: u64,
    /// HTTP status of the response (0 = dropped before a response).
    pub status: u16,
    /// Tail-sampling classification.
    pub flags: TraceFlags,
    /// Why the trace was kept (`""` = sampled out or still in flight).
    pub keep: &'static str,
    /// String annotations (`cache = "hit"`, `fault = "serve.cache_full"`).
    pub attrs: Vec<(&'static str, String)>,
    /// Numeric annotations (`cached_tokens`, `prompt_tokens`, …).
    pub nums: Vec<(&'static str, f64)>,
    /// Attributed phases in recording order.
    pub phases: Vec<Phase>,
    /// Span links: (span name, span id) pairs tying this trace to spans
    /// on other threads (e.g. the `gateway.batch` span that carried it).
    pub links: Vec<(&'static str, usize)>,
}

impl TraceRecord {
    /// End-to-end duration in microseconds (up to now while in flight).
    pub fn duration_us(&self) -> u64 {
        let end = if self.end_us == 0 { crate::elapsed_us() } else { self.end_us };
        end.saturating_sub(self.start_us)
    }

    /// Look up a phase by name (first match).
    pub fn phase(&self, name: &str) -> Option<&Phase> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Sum of all phase durations in microseconds.
    pub fn phase_total_us(&self) -> u64 {
        self.phases.iter().map(Phase::duration_us).sum()
    }

    /// Serialise as a single-line `trace` JSON event in the sink's JSON
    /// subset (round-trips through `astro_eval::json`).
    pub fn to_json_line(&self) -> String {
        use crate::event::write_json_string;
        let mut out = String::with_capacity(256 + 48 * self.phases.len());
        out.push_str("{\"event\":\"trace\",\"trace\":");
        write_json_string(&mut out, &self.id.to_hex());
        out.push_str(",\"name\":");
        write_json_string(&mut out, &self.name);
        if let Some(p) = self.parent_span {
            out.push_str(&format!(",\"parent_span\":\"{p:016x}\""));
        }
        out.push_str(&format!(
            ",\"status\":{},\"start_us\":{},\"end_us\":{},\"dur_us\":{}",
            self.status,
            self.start_us,
            self.end_us,
            self.duration_us()
        ));
        out.push_str(",\"keep\":");
        write_json_string(&mut out, self.keep);
        out.push_str(",\"flags\":[");
        let mut first = true;
        for (set, label) in [
            (self.flags.error, "error"),
            (self.flags.deadline, "deadline"),
            (self.flags.fault, "fault"),
            (self.flags.slow, "slow"),
        ] {
            if set {
                if !first {
                    out.push(',');
                }
                write_json_string(&mut out, label);
                first = false;
            }
        }
        out.push(']');
        if !self.links.is_empty() {
            out.push_str(",\"links\":[");
            for (i, (name, id)) in self.links.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"span\":");
                write_json_string(&mut out, name);
                out.push_str(&format!(",\"id\":{id}}}"));
            }
            out.push(']');
        }
        if !self.attrs.is_empty() {
            out.push_str(",\"attrs\":{");
            for (i, (k, v)) in self.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, k);
                out.push(':');
                write_json_string(&mut out, v);
            }
            out.push('}');
        }
        if !self.nums.is_empty() {
            out.push_str(",\"nums\":{");
            for (i, (k, v)) in self.nums.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, k);
                out.push(':');
                if v.is_finite() {
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            out.push('}');
        }
        out.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_string(&mut out, p.name);
            out.push_str(&format!(",\"start_us\":{},\"end_us\":{}}}", p.start_us, p.end_us));
        }
        out.push_str("]}");
        out
    }
}

/// Tail-sampling and capacity knobs for the trace subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum finished traces retained in the ring (oldest evicted).
    pub ring_capacity: usize,
    /// Keep 1 in N unflagged traces (1 = keep everything).
    pub sample_one_in: u64,
    /// Minimum finished-trace count before the slowest-p1% keep rule
    /// activates (the p99 estimate needs data to be meaningful).
    pub slow_keep_min_count: u64,
    /// Maximum retired span records retained (oldest evicted).
    pub retired_span_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 2048,
            sample_one_in: 1,
            slow_keep_min_count: 128,
            retired_span_capacity: 1024,
        }
    }
}

fn inflight() -> &'static Mutex<HashMap<u128, TraceRecord>> {
    static S: OnceLock<Mutex<HashMap<u128, TraceRecord>>> = OnceLock::new();
    S.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The bounded tail-sampling ring of kept traces plus the retired-span
/// ring, with its sampling counters.
///
/// The process-global instance lives behind a
/// [`crate::sync::Mutex`] (std normally, the model-checker shim under
/// `--cfg astro_check`); it is a public type so the concurrency harness
/// (`tests/check_ring.rs`) can exhaustively explore concurrent
/// admit/retire/drain against a private instance. Every method keeps the
/// structural invariants `traces.len() <= ring_capacity` and
/// `kept == evicted + traces.len()` (over a ring that is never drained
/// mid-count); callers need no cross-call protocol beyond holding the
/// lock.
pub struct TraceRing {
    cfg: TraceConfig,
    traces: VecDeque<TraceRecord>,
    retired_spans: VecDeque<SpanRecord>,
    finished: u64,
    kept: u64,
    evicted: u64,
}

impl TraceRing {
    /// An empty ring with `cfg` (capacities clamped to at least 1).
    pub fn new(cfg: TraceConfig) -> Self {
        let mut ring = TraceRing {
            cfg: TraceConfig::default(),
            traces: VecDeque::new(),
            retired_spans: VecDeque::new(),
            finished: 0,
            kept: 0,
            evicted: 0,
        };
        ring.configure(cfg);
        ring
    }

    /// Install a new [`TraceConfig`] (applies to traces admitted after
    /// the call; shrinking capacities evicts immediately).
    pub fn configure(&mut self, cfg: TraceConfig) {
        self.cfg = TraceConfig {
            ring_capacity: cfg.ring_capacity.max(1),
            sample_one_in: cfg.sample_one_in.max(1),
            slow_keep_min_count: cfg.slow_keep_min_count,
            retired_span_capacity: cfg.retired_span_capacity.max(1),
        };
        while self.traces.len() > self.cfg.ring_capacity {
            self.traces.pop_front();
            self.evicted += 1;
        }
        while self.retired_spans.len() > self.cfg.retired_span_capacity {
            self.retired_spans.pop_front();
        }
    }

    /// The currently installed [`TraceConfig`].
    pub fn config(&self) -> TraceConfig {
        self.cfg
    }

    /// Classify a finished record for tail sampling and retain a copy if
    /// kept (evicting oldest-first past capacity). `slow` is the caller's
    /// latency verdict (ring state cannot compute percentiles). Returns
    /// the keep reason, `""` when sampled out; `rec.keep` and
    /// `rec.flags.slow` are stamped on the way in.
    pub fn admit(&mut self, rec: &mut TraceRecord, slow: bool) -> &'static str {
        self.finished += 1;
        let cfg = self.cfg;
        let keep = if rec.flags.deadline {
            "deadline"
        } else if rec.flags.error {
            "error"
        } else if rec.flags.fault {
            "fault"
        } else if slow {
            rec.flags.slow = true;
            "slow"
        } else if self.finished.is_multiple_of(cfg.sample_one_in) {
            "sampled"
        } else {
            ""
        };
        if !keep.is_empty() {
            rec.keep = keep;
            self.kept += 1;
            self.traces.push_back(rec.clone());
            while self.traces.len() > cfg.ring_capacity {
                self.traces.pop_front();
                self.evicted += 1;
            }
        }
        keep
    }

    /// Append retired spans, evicting oldest-first past capacity.
    pub fn retire(&mut self, spans: Vec<SpanRecord>) {
        let cap = self.cfg.retired_span_capacity;
        for s in spans {
            self.retired_spans.push_back(s);
        }
        while self.retired_spans.len() > cap {
            self.retired_spans.pop_front();
        }
    }

    /// Kept traces, oldest first (cloned).
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.traces.iter().cloned().collect()
    }

    /// Remove and return every kept trace, oldest first.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.traces.drain(..).collect()
    }

    /// Retired spans, oldest first (cloned).
    pub fn retired(&self) -> Vec<SpanRecord> {
        self.retired_spans.iter().cloned().collect()
    }

    /// Kept traces currently resident.
    pub fn len(&self) -> usize {
        self.traces.len()
    }

    /// True when no kept trace is resident.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// `(finished, kept, evicted)` counters since construction/clear.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.finished, self.kept, self.evicted)
    }

    /// Clear traces, retired spans and counters; the config is kept.
    pub fn clear(&mut self) {
        self.traces.clear();
        self.retired_spans.clear();
        self.finished = 0;
        self.kept = 0;
        self.evicted = 0;
    }
}

fn ring() -> &'static crate::sync::Mutex<TraceRing> {
    static S: OnceLock<crate::sync::Mutex<TraceRing>> = OnceLock::new();
    S.get_or_init(|| crate::sync::Mutex::new(TraceRing::new(TraceConfig::default())))
}

/// Install a new [`TraceConfig`] on the global ring (applies to traces
/// finished after the call; shrinking capacities evicts immediately).
pub fn configure(cfg: TraceConfig) {
    let (_order, mut ring) = crate::sync::lock_ranked("telemetry.trace.ring", ring());
    ring.configure(cfg);
}

/// The currently installed [`TraceConfig`].
pub fn config() -> TraceConfig {
    let (_order, ring) = crate::sync::lock_ranked("telemetry.trace.ring", ring());
    ring.config()
}

/// Open a trace. `start_us` anchors the trace at the moment the request
/// actually arrived (phases recorded later tile `[start_us, end]`).
/// Returns `false` if the id is already in flight (caller should mint a
/// fresh id — duplicate inbound `traceparent`s must not merge records).
pub fn start(id: TraceId, name: &str, parent_span: Option<u64>, start_us: u64) -> bool {
    let rec = TraceRecord {
        id,
        name: name.to_string(),
        parent_span,
        start_us,
        end_us: 0,
        status: 0,
        flags: TraceFlags::default(),
        keep: "",
        attrs: Vec::new(),
        nums: Vec::new(),
        phases: Vec::new(),
        links: Vec::new(),
    };
    let (_order, mut map) = crate::lockcheck::lock_ranked("telemetry.trace.inflight", inflight());
    if map.contains_key(&id.0) {
        return false;
    }
    map.insert(id.0, rec);
    true
}

/// True while `id` is open (started but not finished).
pub fn is_inflight(id: TraceId) -> bool {
    let (_order, map) = crate::lockcheck::lock_ranked("telemetry.trace.inflight", inflight());
    map.contains_key(&id.0)
}

fn with_inflight(id: TraceId, f: impl FnOnce(&mut TraceRecord)) {
    let (_order, mut map) = crate::lockcheck::lock_ranked("telemetry.trace.inflight", inflight());
    if let Some(rec) = map.get_mut(&id.0) {
        f(rec);
    }
}

/// Record a phase with explicit bounds. Silently a no-op if the trace is
/// unknown or already finished — late recorders (a scheduler stamping a
/// request whose handler already timed out) must never resurrect a trace.
pub fn phase(id: TraceId, name: &'static str, start_us: u64, end_us: u64) {
    with_inflight(id, |rec| {
        rec.phases.push(Phase { name, start_us, end_us: end_us.max(start_us) });
    });
}

/// Record a phase spanning from the previous phase's end (or the trace
/// start) to now, and return the phase's end timestamp. This is how
/// consecutive phases are guaranteed to tile the request's wall time with
/// no gaps. Returns `None` if the trace is unknown or finished.
pub fn phase_since_last(id: TraceId, name: &'static str) -> Option<u64> {
    let now = crate::elapsed_us();
    let mut recorded = None;
    with_inflight(id, |rec| {
        let start = rec.phases.last().map_or(rec.start_us, |p| p.end_us);
        rec.phases.push(Phase { name, start_us: start, end_us: now.max(start) });
        recorded = Some(now.max(start));
    });
    recorded
}

/// Attach or overwrite a string annotation.
pub fn annotate(id: TraceId, key: &'static str, value: &str) {
    with_inflight(id, |rec| match rec.attrs.iter_mut().find(|(k, _)| *k == key) {
        Some(slot) => slot.1 = value.to_string(),
        None => rec.attrs.push((key, value.to_string())),
    });
}

/// Attach or overwrite a numeric annotation.
pub fn record_num(id: TraceId, key: &'static str, v: f64) {
    with_inflight(id, |rec| match rec.nums.iter_mut().find(|(k, _)| *k == key) {
        Some(slot) => slot.1 = v,
        None => rec.nums.push((key, v)),
    });
}

/// Link a span (by name and id) to the trace — the cross-thread causality
/// edge, e.g. the `gateway.batch` span that carried this request through
/// the scheduler.
pub fn link(id: TraceId, span_name: &'static str, span_id: usize) {
    with_inflight(id, |rec| {
        if !rec.links.iter().any(|&(n, s)| n == span_name && s == span_id) {
            rec.links.push((span_name, span_id));
        }
    });
}

/// Mark the trace as having hit an injected fault at `site`; fault-marked
/// traces always survive tail sampling.
pub fn mark_fault(id: TraceId, site: &str) {
    with_inflight(id, |rec| {
        rec.flags.fault = true;
        match rec.attrs.iter_mut().find(|(k, _)| *k == "fault") {
            Some(slot) => {
                if !slot.1.split(',').any(|s| s == site) {
                    slot.1.push(',');
                    slot.1.push_str(site);
                }
            }
            None => rec.attrs.push(("fault", site.to_string())),
        }
    });
}

/// Mark the trace as having missed its deadline (kept unconditionally).
pub fn mark_deadline(id: TraceId) {
    with_inflight(id, |rec| rec.flags.deadline = true);
}

/// Clone the in-flight record (for rendering a phase breakdown into the
/// response body before the trace finishes). `None` once finished.
pub fn inflight_snapshot(id: TraceId) -> Option<TraceRecord> {
    let (_order, map) = crate::lockcheck::lock_ranked("telemetry.trace.inflight", inflight());
    map.get(&id.0).cloned()
}

/// Close the trace: stamp the end time and status, classify it for tail
/// sampling, feed the latency histograms, retain it in the ring if kept
/// (also emitting a `trace` JSONL event), and return the finished record.
/// One-shot: a second finish for the same id returns `None`.
pub fn finish(id: TraceId, status: u16) -> Option<TraceRecord> {
    let mut rec = {
        let (_order, mut map) =
            crate::lockcheck::lock_ranked("telemetry.trace.inflight", inflight());
        map.remove(&id.0)?
    };
    rec.end_us = crate::elapsed_us();
    rec.status = status;
    if status == 0 || status >= 500 {
        rec.flags.error = true;
    }
    if status == 504 {
        rec.flags.deadline = true;
    }
    let e2e = rec.duration_us() as f64;
    let hist = crate::metrics::histogram("trace.e2e_us");
    let (prior_count, p99) = (hist.count(), hist.quantile(0.99));
    hist.observe_with_exemplar(e2e, rec.id.0);
    for p in &rec.phases {
        crate::metrics::histogram(&format!("trace.phase.{}_us", p.name))
            .observe(p.duration_us() as f64);
    }
    let keep = {
        let (_order, mut ring) = crate::sync::lock_ranked("telemetry.trace.ring", ring());
        let slow = prior_count >= ring.config().slow_keep_min_count && e2e >= p99;
        ring.admit(&mut rec, slow)
    };
    crate::metrics::counter("trace.finished").inc();
    if keep.is_empty() {
        crate::metrics::counter("trace.sampled_out").inc();
    } else {
        crate::metrics::counter("trace.kept").inc();
        if crate::sink::is_active() {
            crate::sink::emit_line(&rec.to_json_line());
        }
    }
    Some(rec)
}

/// Move closed spans evicted from the span registry into the bounded
/// retired-span ring (called by [`crate::span`]; see
/// [`crate::span::set_capacity`]).
pub fn retire_spans(spans: Vec<SpanRecord>) {
    if spans.is_empty() {
        return;
    }
    let n = spans.len() as u64;
    {
        let (_order, mut ring) = crate::sync::lock_ranked("telemetry.trace.ring", ring());
        ring.retire(spans);
    }
    crate::metrics::counter("span.retired").add(n);
}

/// Snapshot the retired-span ring (most recent `retired_span_capacity`
/// spans evicted from the live registry).
pub fn retired_spans() -> Vec<SpanRecord> {
    let (_order, ring) = crate::sync::lock_ranked("telemetry.trace.ring", ring());
    ring.retired()
}

/// Snapshot the kept-trace ring, oldest first.
pub fn ring_snapshot() -> Vec<TraceRecord> {
    let (_order, ring) = crate::sync::lock_ranked("telemetry.trace.ring", ring());
    ring.snapshot()
}

/// Drain the kept-trace ring, oldest first.
pub fn drain_ring() -> Vec<TraceRecord> {
    let (_order, mut ring) = crate::sync::lock_ranked("telemetry.trace.ring", ring());
    ring.drain()
}

/// Write every kept trace in the ring to `path` as JSONL; returns the
/// number of lines written.
pub fn write_ring_jsonl(path: &std::path::Path) -> std::io::Result<usize> {
    use std::io::Write;
    let traces = ring_snapshot();
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    for t in &traces {
        writeln!(w, "{}", t.to_json_line())?;
    }
    w.flush()?;
    Ok(traces.len())
}

/// Point-in-time counters for the trace subsystem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Traces currently open.
    pub inflight: usize,
    /// Traces finished since start/reset.
    pub finished: u64,
    /// Finished traces that survived tail sampling.
    pub kept: u64,
    /// Kept traces evicted from the ring by capacity.
    pub evicted: u64,
    /// Kept traces currently in the ring.
    pub ring_len: usize,
}

/// Read the trace subsystem's counters.
pub fn stats() -> TraceStats {
    let inflight_n = {
        let (_order, map) = crate::lockcheck::lock_ranked("telemetry.trace.inflight", inflight());
        map.len()
    };
    let (_order, ring) = crate::sync::lock_ranked("telemetry.trace.ring", ring());
    let (finished, kept, evicted) = ring.counters();
    TraceStats { inflight: inflight_n, finished, kept, evicted, ring_len: ring.len() }
}

/// Clear all trace state — in-flight table, ring, retired spans and
/// counters (tests and multi-run binaries). The config is kept.
pub fn reset() {
    {
        let (_order, mut map) =
            crate::lockcheck::lock_ranked("telemetry.trace.inflight", inflight());
        map.clear();
    }
    let (_order, mut ring) = crate::sync::lock_ranked("telemetry.trace.ring", ring());
    ring.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Trace state is process-global; tests that mutate it serialise on
    /// this gate (same pattern as the fault-injection tests).
    static GATE: Mutex<()> = Mutex::new(());

    fn gate() -> (crate::lockcheck::LockToken, std::sync::MutexGuard<'static, ()>) {
        crate::lockcheck::lock_ranked("test.fault_gate", &GATE)
    }

    #[test]
    fn trace_id_hex_round_trip() {
        let id = TraceId(0x0123_4567_89ab_cdef_0011_2233_4455_6677);
        assert_eq!(id.to_hex().len(), 32);
        assert_eq!(TraceId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(TraceId::from_hex("0"), None);
        assert_eq!(TraceId::from_hex(&"0".repeat(32)), None, "zero id rejected");
        assert_eq!(TraceId::from_hex(&"G".repeat(32)), None);
        assert_eq!(TraceId::from_hex(&"A".repeat(32)), None, "uppercase rejected");
    }

    #[test]
    fn mint_is_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = mint();
            assert_ne!(id.0, 0);
            assert!(seen.insert(id.0), "duplicate minted id {id}");
        }
    }

    #[test]
    fn traceparent_round_trip_and_rejects() {
        let id = mint();
        let header = format_traceparent(id, 0xdead_beef);
        let (t, p) = parse_traceparent(&header).expect("own header parses");
        assert_eq!(t, id);
        assert_eq!(p, 0xdead_beef);
        // W3C examples.
        let (t, p) = parse_traceparent(
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
        )
        .unwrap();
        assert_eq!(t.to_hex(), "4bf92f3577b34da6a3ce929d0e0e4736");
        assert_eq!(p, 0x00f0_67aa_0ba9_02b7);
        for bad in [
            "",
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
            "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // version ff
            "00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
            "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero parent
            "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
            "00-4bf92f3577b34da6-00f067aa0ba902b7-01",                 // short trace
            "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-xx", // extra field
        ] {
            assert_eq!(parse_traceparent(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn lifecycle_phases_tile_and_finish_is_one_shot() {
        let _g = gate();
        reset();
        let id = mint();
        let t0 = crate::elapsed_us();
        assert!(start(id, "gateway./v1/score", Some(7), t0));
        assert!(!start(id, "dup", None, t0), "duplicate id rejected");
        assert!(is_inflight(id));
        let e1 = phase_since_last(id, "recv").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let e2 = phase_since_last(id, "queue_wait").unwrap();
        phase(id, "decode", e2, e2 + 10);
        annotate(id, "cache", "hit");
        record_num(id, "cached_tokens", 12.0);
        link(id, "gateway.batch", 42);
        link(id, "gateway.batch", 42); // dedup
        let snap = inflight_snapshot(id).unwrap();
        assert_eq!(snap.phases.len(), 3);
        assert_eq!(snap.phases[0].start_us, t0, "first phase starts at trace start");
        assert_eq!(snap.phases[0].end_us, e1);
        assert_eq!(snap.phases[1].start_us, e1, "phases tile with no gaps");
        assert_eq!(snap.links, vec![("gateway.batch", 42)]);

        let rec = finish(id, 200).expect("finish returns the record");
        assert!(!is_inflight(id));
        assert_eq!(rec.status, 200);
        assert_eq!(rec.keep, "sampled", "default config keeps everything");
        assert!(rec.end_us >= rec.start_us);
        assert_eq!(rec.phase("decode").unwrap().duration_us(), 10);
        assert!(finish(id, 200).is_none(), "finish is one-shot");
        // Late recorders on a finished trace are silent no-ops.
        phase(id, "late", 0, 1);
        assert!(phase_since_last(id, "late").is_none());
        assert_eq!(ring_snapshot().len(), 1);
        reset();
    }

    #[test]
    fn tail_sampling_keeps_flagged_and_samples_rest() {
        let _g = gate();
        reset();
        configure(TraceConfig {
            sample_one_in: 5,
            slow_keep_min_count: u64::MAX, // isolate from the shared histogram
            ..TraceConfig::default()
        });
        let t0 = crate::elapsed_us();
        // 10 clean traces → 2 sampled; 1 error + 1 deadline + 1 fault → all kept.
        for _ in 0..10 {
            let id = mint();
            assert!(start(id, "ok", None, t0));
            let rec = finish(id, 200).unwrap();
            assert!(rec.keep.is_empty() || rec.keep == "sampled");
        }
        let err = mint();
        assert!(start(err, "err", None, t0));
        assert_eq!(finish(err, 500).unwrap().keep, "error");
        let dl = mint();
        assert!(start(dl, "dl", None, t0));
        let rec = finish(dl, 504).unwrap();
        assert_eq!(rec.keep, "deadline");
        assert!(rec.flags.deadline);
        let flt = mint();
        assert!(start(flt, "flt", None, t0));
        mark_fault(flt, "serve.cache_full");
        mark_fault(flt, "serve.cache_full"); // idempotent
        let rec = finish(flt, 200).unwrap();
        assert_eq!(rec.keep, "fault");
        assert_eq!(rec.attrs, vec![("fault", "serve.cache_full".to_string())]);
        let kept = ring_snapshot();
        assert_eq!(kept.len(), 2 + 3, "2 sampled of 10, plus 3 flagged: {kept:#?}");
        let st = stats();
        assert_eq!(st.finished, 13);
        assert_eq!(st.kept, 5);
        configure(TraceConfig::default());
        reset();
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let _g = gate();
        reset();
        configure(TraceConfig {
            ring_capacity: 4,
            slow_keep_min_count: u64::MAX,
            ..TraceConfig::default()
        });
        let t0 = crate::elapsed_us();
        let mut ids = Vec::new();
        for _ in 0..10 {
            let id = mint();
            assert!(start(id, "r", None, t0));
            finish(id, 200);
            ids.push(id);
        }
        let ring = ring_snapshot();
        assert_eq!(ring.len(), 4);
        let kept: Vec<TraceId> = ring.iter().map(|r| r.id).collect();
        assert_eq!(kept, ids[6..].to_vec(), "oldest evicted first");
        assert_eq!(stats().evicted, 6);
        assert_eq!(drain_ring().len(), 4);
        assert!(ring_snapshot().is_empty());
        configure(TraceConfig::default());
        reset();
    }

    #[test]
    fn retired_span_ring_is_bounded() {
        let _g = gate();
        reset();
        configure(TraceConfig { retired_span_capacity: 3, ..TraceConfig::default() });
        let mk = |i: usize| SpanRecord {
            id: i,
            parent: None,
            name: format!("s{i}"),
            attrs: Vec::new(),
            nums: Vec::new(),
            start_us: 0,
            end_us: Some(1),
            trace: None,
            links: Vec::new(),
        };
        retire_spans((0..7).map(mk).collect());
        let retired = retired_spans();
        assert_eq!(retired.len(), 3);
        assert_eq!(retired[0].id, 4, "oldest retired spans evicted");
        configure(TraceConfig::default());
        reset();
    }

    #[test]
    fn json_line_shape() {
        let _g = gate();
        reset();
        let id = mint();
        let t0 = crate::elapsed_us();
        assert!(start(id, "gateway./v1/score", Some(0xabc), t0));
        phase(id, "recv", t0, t0 + 5);
        annotate(id, "cache", "miss");
        record_num(id, "prompt_tokens", 17.0);
        link(id, "gateway.batch", 3);
        mark_fault(id, "gateway.accept_fail");
        let rec = finish(id, 503).unwrap();
        let line = rec.to_json_line();
        assert!(line.starts_with("{\"event\":\"trace\""), "{line}");
        assert!(line.contains(&format!("\"trace\":\"{}\"", id.to_hex())), "{line}");
        assert!(line.contains("\"parent_span\":\"0000000000000abc\""), "{line}");
        assert!(line.contains("\"status\":503"), "{line}");
        assert!(line.contains("\"error\""), "{line}");
        assert!(line.contains("\"fault\""), "{line}");
        assert!(line.contains("\"links\":[{\"span\":\"gateway.batch\",\"id\":3}]"), "{line}");
        assert!(line.contains("\"attrs\":{"), "{line}");
        assert!(line.contains("\"nums\":{\"prompt_tokens\":17}"), "{line}");
        assert!(line.contains("\"phases\":[{\"name\":\"recv\""), "{line}");
        assert!(!line.contains('\n'));
        reset();
    }
}
