//! Global counters, gauges and fixed-bucket histograms.
//!
//! Handles are `Arc`-backed and lock-free on the hot path (atomic adds /
//! compare-and-swap); only handle creation takes the registry lock, so
//! instrumented call sites should fetch a handle once and reuse it where
//! performance matters, or call [`counter`]`(name).add(n)` inline where it
//! does not.
//!
//! Histograms use fixed power-of-two bucket boundaries (1, 2, 4, … 2³⁹ by
//! default), so observations of microsecond latencies and token counts
//! both land in sensible buckets. Quantiles are read out as the upper
//! boundary of the bucket containing the requested rank — the standard
//! fixed-bucket estimate (exact max is tracked separately).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistInner {
    /// Upper bucket boundaries, strictly increasing. Bucket `i` counts
    /// observations `v <= bounds[i]` (and `> bounds[i-1]`); one extra
    /// overflow bucket counts `v > bounds.last()`.
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 bit-patterns updated by CAS loops.
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    /// Exemplar: the trace id that produced the largest observation seen
    /// via [`Histogram::observe_with_exemplar`]. The winning observation
    /// is tracked by `ex_max_bits`; the id is split across two atomics,
    /// so two racing maxima can interleave halves — an accepted
    /// best-effort trade for a lock-free hot path (exemplars are
    /// diagnostic pointers, not accounting).
    ex_max_bits: AtomicU64,
    ex_hi: AtomicU64,
    ex_lo: AtomicU64,
    ex_set: AtomicU64,
}

/// A fixed-bucket histogram.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

/// Default boundaries: powers of two from 1 to 2³⁹ (~5.5e11).
fn default_bounds() -> Vec<f64> {
    (0..40).map(|i| (1u64 << i) as f64).collect()
}

impl Histogram {
    fn with_bounds(bounds: Vec<f64>) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one boundary");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram boundaries must be strictly increasing"
        );
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistInner {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0.0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            ex_max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            ex_hi: AtomicU64::new(0),
            ex_lo: AtomicU64::new(0),
            ex_set: AtomicU64::new(0),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        let h = &*self.0;
        let idx = h.bounds.partition_point(|&b| v > b);
        h.buckets[idx].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        cas_f64(&h.sum_bits, |s| s + v);
        cas_f64(&h.min_bits, |m| m.min(v));
        cas_f64(&h.max_bits, |m| m.max(v));
    }

    /// Record one observation carrying a trace-id **exemplar**: if `v`
    /// becomes the largest exemplared observation, the histogram
    /// remembers `trace` so a p99 outlier in a metrics snapshot points
    /// straight at a concrete trace in the ring.
    pub fn observe_with_exemplar(&self, v: f64, trace: u128) {
        self.observe(v);
        if !v.is_finite() {
            return;
        }
        let h = &*self.0;
        let mut cur = h.ex_max_bits.load(Ordering::Relaxed);
        loop {
            if v < f64::from_bits(cur) {
                return;
            }
            match h.ex_max_bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        h.ex_hi.store((trace >> 64) as u64, Ordering::Relaxed);
        h.ex_lo.store(trace as u64, Ordering::Relaxed);
        h.ex_set.store(1, Ordering::Relaxed);
    }

    /// The trace id attached to the largest exemplared observation, if
    /// any observation came through [`Histogram::observe_with_exemplar`].
    pub fn exemplar(&self) -> Option<u128> {
        let h = &*self.0;
        if h.ex_set.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let hi = h.ex_hi.load(Ordering::Relaxed);
        let lo = h.ex_lo.load(Ordering::Relaxed);
        Some((u128::from(hi) << 64) | u128::from(lo))
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)) / c as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.0.min_bits.load(Ordering::Relaxed)))
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.0.max_bits.load(Ordering::Relaxed)))
    }

    /// Quantile estimate for `q` in `[0, 1]`: the upper boundary of the
    /// bucket holding the rank-`⌈q·n⌉` observation, clamped to the exact
    /// observed maximum (0 when empty).
    pub fn quantile(&self, q: f64) -> f64 {
        let h = &*self.0;
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, bucket) in h.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                let upper = h.bounds.get(i).copied().unwrap_or(f64::INFINITY);
                return upper.min(self.max().unwrap_or(upper));
            }
        }
        self.max().unwrap_or(0.0)
    }
}

fn cas_f64(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur)).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(now) => cur = now,
        }
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static Mutex<Registry> {
    static REGISTRY: OnceLock<Mutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Registry::default()))
}

/// Get or create the counter `name`.
pub fn counter(name: &str) -> Counter {
    let (_order, mut reg) = crate::lockcheck::lock_ranked("telemetry.metrics.registry", registry());
    reg.counters
        .entry(name.to_string())
        .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
        .clone()
}

/// Get or create the gauge `name`.
pub fn gauge(name: &str) -> Gauge {
    let (_order, mut reg) = crate::lockcheck::lock_ranked("telemetry.metrics.registry", registry());
    reg.gauges
        .entry(name.to_string())
        .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
        .clone()
}

/// Get or create the histogram `name` with default power-of-two buckets.
pub fn histogram(name: &str) -> Histogram {
    histogram_with(name, &[])
}

/// Get or create the histogram `name`; `bounds` (strictly increasing
/// upper boundaries) apply only on first creation, empty means default.
pub fn histogram_with(name: &str, bounds: &[f64]) -> Histogram {
    let (_order, mut reg) = crate::lockcheck::lock_ranked("telemetry.metrics.registry", registry());
    reg.histograms
        .entry(name.to_string())
        .or_insert_with(|| {
            Histogram::with_bounds(if bounds.is_empty() {
                default_bounds()
            } else {
                bounds.to_vec()
            })
        })
        .clone()
}

/// Point-in-time summary of one histogram.
#[derive(Clone, Debug)]
pub struct HistSummary {
    /// Observation count.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Estimated quantiles.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Hex trace id of the largest exemplared observation, if any.
    pub exemplar: Option<String>,
}

/// Point-in-time snapshot of every registered metric.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries by name.
    pub histograms: Vec<(String, HistSummary)>,
}

/// Snapshot all metrics (sorted by name; zero-count entries included).
pub fn snapshot() -> MetricsSnapshot {
    let (_order, reg) = crate::lockcheck::lock_ranked("telemetry.metrics.registry", registry());
    MetricsSnapshot {
        counters: reg.counters.iter().map(|(k, c)| (k.clone(), c.get())).collect(),
        gauges: reg.gauges.iter().map(|(k, g)| (k.clone(), g.get())).collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistSummary {
                        count: h.count(),
                        mean: h.mean(),
                        p50: h.quantile(0.50),
                        p95: h.quantile(0.95),
                        p99: h.quantile(0.99),
                        min: h.min().unwrap_or(0.0),
                        max: h.max().unwrap_or(0.0),
                        exemplar: h.exemplar().map(|t| format!("{t:032x}")),
                    },
                )
            })
            .collect(),
    }
}

/// Drop every registered metric (tests and multi-run binaries). Existing
/// handles keep working but detach from the registry.
pub fn reset() {
    let (_order, mut reg) = crate::lockcheck::lock_ranked("telemetry.metrics.registry", registry());
    *reg = Registry::default();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = counter("test.metrics.counter");
        c.add(5);
        c.inc();
        assert_eq!(counter("test.metrics.counter").get(), 6);
        let g = gauge("test.metrics.gauge");
        g.set(42);
        g.add(-2);
        assert_eq!(gauge("test.metrics.gauge").get(), 40);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper() {
        let h = histogram_with("test.metrics.bounds", &[1.0, 2.0, 4.0]);
        // v <= 1 → bucket 0; 1 < v <= 2 → bucket 1; v > 4 → overflow.
        for v in [0.5, 1.0] {
            h.observe(v);
        }
        h.observe(1.5);
        h.observe(4.0);
        h.observe(100.0);
        assert_eq!(h.count(), 5);
        let inner = &h.0;
        let loads: Vec<u64> = inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        assert_eq!(loads, vec![2, 1, 1, 1]);
    }

    #[test]
    fn histogram_quantiles() {
        let h = histogram_with("test.metrics.quant", &[1.0, 2.0, 4.0, 8.0, 16.0]);
        // 100 observations: 50 at 1, 45 at 3, 5 at 10.
        for _ in 0..50 {
            h.observe(1.0);
        }
        for _ in 0..45 {
            h.observe(3.0);
        }
        for _ in 0..5 {
            h.observe(10.0);
        }
        assert_eq!(h.quantile(0.5), 1.0); // rank 50 is in bucket (<=1)
        assert_eq!(h.quantile(0.95), 4.0); // rank 95 in (2,4]
        assert_eq!(h.quantile(0.99), 10.0); // rank 99 in (8,16], clamped to max
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(10.0));
        assert!((h.mean() - (50.0 + 135.0 + 50.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_empty_and_nan() {
        let h = histogram("test.metrics.empty");
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn default_buckets_cover_latency_scales() {
        let h = histogram("test.metrics.default");
        h.observe(3.0); // 3 µs
        h.observe(1_000_000.0); // 1 s in µs
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) >= 1_000_000.0);
    }

    #[test]
    fn exemplar_tracks_the_max_observation() {
        let h = histogram("test.metrics.exemplar");
        assert_eq!(h.exemplar(), None);
        h.observe(1e9); // plain observations never set an exemplar
        assert_eq!(h.exemplar(), None);
        h.observe_with_exemplar(10.0, 0xaaaa);
        h.observe_with_exemplar(50.0, 0xbbbb);
        h.observe_with_exemplar(20.0, 0xcccc); // smaller: does not displace
        assert_eq!(h.exemplar(), Some(0xbbbb));
        let snap = snapshot();
        let (_, s) = snap
            .histograms
            .iter()
            .find(|(k, _)| k == "test.metrics.exemplar")
            .unwrap();
        assert_eq!(s.exemplar.as_deref(), Some("0000000000000000000000000000bbbb"));
    }

    #[test]
    fn snapshot_lists_registered_metrics() {
        counter("test.metrics.snap").add(3);
        let snap = snapshot();
        assert!(snap
            .counters
            .iter()
            .any(|(k, v)| k == "test.metrics.snap" && *v >= 3));
    }
}
