//! Human-readable end-of-run summary: the span tree with wall times and
//! derived rates, followed by a metrics table.
//!
//! ```text
//! ── run summary ──────────────────────────────────
//! study.pretrain_native tier=S7b        12.42s
//!   train kind=lm                       12.40s  [tokens 53760, 4.3k tok/s]
//! study.cpt recipe=aic                   4.01s
//! ...
//! counters:
//!   train.tokens                      215040
//! histograms (p50/p95/p99):
//!   allreduce.micros          n=600  84/412/980 µs
//! ```

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;

/// Render the full summary (span tree + metrics) from the current global
/// state.
pub fn render() -> String {
    render_from(&crate::span::snapshot(), &crate::metrics::snapshot())
}

/// Render from explicit snapshots (testable without global state).
pub fn render_from(spans: &[SpanRecord], metrics: &MetricsSnapshot) -> String {
    let mut out = String::from("── run summary ─────────────────────────────────────────────\n");
    // Children sorted by start time under each parent; roots at depth 0.
    // Span ids are allocation-ordered, not positional (the registry
    // retires old spans), so parents resolve through an id → position
    // map; a span whose parent has been retired renders as a root.
    let pos: std::collections::HashMap<usize, usize> =
        spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match s.parent.and_then(|p| pos.get(&p).copied()) {
            Some(p) if p != i => children[p].push(i),
            _ => roots.push(i),
        }
    }
    let by_start = |xs: &mut Vec<usize>| xs.sort_by_key(|&i| spans[i].start_us);
    by_start(&mut roots);
    for c in children.iter_mut() {
        by_start(c);
    }
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 0)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = &spans[i];
        out.push_str(&render_span_line(s, depth));
        for &c in children[i].iter().rev() {
            stack.push((c, depth + 1));
        }
    }

    if !metrics.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &metrics.counters {
            out.push_str(&format!("  {name:<42} {v}\n"));
        }
    }
    if !metrics.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &metrics.gauges {
            out.push_str(&format!("  {name:<42} {v}\n"));
        }
    }
    let live_hists: Vec<_> = metrics.histograms.iter().filter(|(_, h)| h.count > 0).collect();
    if !live_hists.is_empty() {
        out.push_str("histograms (n, mean, p50/p95/p99, max):\n");
        for (name, h) in live_hists {
            out.push_str(&format!(
                "  {name:<30} n={:<8} mean={:<10.1} {:.0}/{:.0}/{:.0} max={:.0}\n",
                h.count, h.mean, h.p50, h.p95, h.p99, h.max
            ));
        }
    }
    out
}

fn render_span_line(s: &SpanRecord, depth: usize) -> String {
    let indent = "  ".repeat(depth);
    let mut label = s.name.clone();
    for (k, v) in &s.attrs {
        label.push_str(&format!(" {k}={v}"));
    }
    let dur_s = s.duration_us() as f64 / 1e6;
    let mut line = format!("{indent}{label:<46} {:>9}", human_secs(dur_s));
    if s.end_us.is_none() {
        line.push_str("  (open)");
    }
    let mut extras: Vec<String> = Vec::new();
    for (k, v) in &s.nums {
        extras.push(format!("{k} {}", human_count(*v)));
        // A recorded token count gets a derived rate over the span's wall
        // time — the number perf PRs will quote.
        if k == "tokens" && dur_s > 0.0 {
            extras.push(format!("{} tok/s", human_count(*v / dur_s)));
        }
    }
    if !extras.is_empty() {
        line.push_str(&format!("  [{}]", extras.join(", ")));
    }
    line.push('\n');
    line
}

fn human_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

fn human_count(v: f64) -> String {
    if v.abs() >= 1e9 {
        format!("{:.1}G", v / 1e9)
    } else if v.abs() >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v.abs() >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{HistSummary, MetricsSnapshot};

    fn rec(id: usize, parent: Option<usize>, name: &str, start: u64, end: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            name: name.to_string(),
            attrs: Vec::new(),
            nums: Vec::new(),
            start_us: start,
            end_us: Some(end),
            trace: None,
            links: Vec::new(),
        }
    }

    #[test]
    fn tree_indents_children_and_orders_by_start() {
        let mut a = rec(0, None, "study.pretrain", 0, 2_000_000);
        a.attrs.push(("tier".into(), "S7b".into()));
        let mut b = rec(1, Some(0), "train", 100, 1_900_000);
        b.nums.push(("tokens".into(), 9000.0));
        let c = rec(2, None, "study.cpt", 2_000_001, 3_000_000);
        let out = render_from(&[a, b, c], &MetricsSnapshot::default());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with("study.pretrain tier=S7b"), "{out}");
        assert!(lines[2].starts_with("  train"), "{out}");
        assert!(lines[2].contains("tok/s"), "{out}");
        assert!(lines[3].starts_with("study.cpt"), "{out}");
    }

    #[test]
    fn retired_parent_renders_child_as_root() {
        // Parent id 0 was retired from the registry; ids no longer equal
        // positions. The orphan must render at depth 0, not panic.
        let orphan = rec(5, Some(0), "train", 100, 200);
        let child = rec(7, Some(5), "step", 110, 190);
        let out = render_from(&[orphan, child], &MetricsSnapshot::default());
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[1].starts_with("train"), "{out}");
        assert!(lines[2].starts_with("  step"), "{out}");
    }

    #[test]
    fn metrics_sections_render() {
        let snap = MetricsSnapshot {
            counters: vec![("train.tokens".into(), 215040)],
            gauges: vec![("pool.queue_depth".into(), 0)],
            histograms: vec![
                (
                    "allreduce.micros".into(),
                    HistSummary {
                        count: 600,
                        mean: 120.0,
                        p50: 84.0,
                        p95: 412.0,
                        p99: 980.0,
                        min: 60.0,
                        max: 1100.0,
                        exemplar: None,
                    },
                ),
                (
                    "empty.hist".into(),
                    HistSummary {
                        count: 0,
                        mean: 0.0,
                        p50: 0.0,
                        p95: 0.0,
                        p99: 0.0,
                        min: 0.0,
                        max: 0.0,
                        exemplar: None,
                    },
                ),
            ],
        };
        let out = render_from(&[], &snap);
        assert!(out.contains("train.tokens"), "{out}");
        assert!(out.contains("pool.queue_depth"), "{out}");
        assert!(out.contains("84/412/980"), "{out}");
        assert!(!out.contains("empty.hist"), "zero-count histograms are elided: {out}");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_secs(0.000001), "1µs");
        assert_eq!(human_secs(0.0123), "12.3ms");
        assert_eq!(human_secs(75.0), "75.00s");
        assert_eq!(human_count(999.0), "999");
        assert_eq!(human_count(4300.0), "4.3k");
        assert_eq!(human_count(2_500_000.0), "2.5M");
    }
}
