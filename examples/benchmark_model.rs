//! Benchmark a saved checkpoint with the three AstroMLab methods.
//!
//! Loads a model (and tokenizer) written by `train_astrollama`, rebuilds
//! the benchmark deterministically from the same seed, and reports all
//! three scores plus the full-instruct extraction-stage breakdown — the
//! diagnostic the paper uses to attribute score loss to
//! instruction-following rather than knowledge.
//!
//! Usage:
//! ```sh
//! cargo run --release --example benchmark_model -- <ckpt> <tokenizer.bin> [n_questions]
//! ```
//! With no arguments, trains a smoke-scale model in place and benchmarks
//! it (so the example is always runnable).

use astromlab::eval::{
    evaluate, EvalModel, InstructEvalConfig, Method, TokenEvalConfig,
};
use astromlab::model::{serial, Params, Tier};
use astromlab::tokenizer::Tokenizer;
use astromlab::prng::Rng;
use astromlab::{Study, StudyConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let study = Study::prepare(StudyConfig::smoke(7)).expect("prepare");

    let (params, tokenizer): (Params, Tokenizer) = match (args.get(1), args.get(2)) {
        (Some(ckpt), Some(tok_path)) => {
            let params = serial::load_checkpoint(std::path::Path::new(ckpt))
                .unwrap_or_else(|e| panic!("load {ckpt}: {e}"));
            let blob = std::fs::read(tok_path).unwrap_or_else(|e| panic!("read {tok_path}: {e}"));
            let tokenizer = Tokenizer::from_bytes(&blob).expect("parse tokenizer");
            (params, tokenizer)
        }
        _ => {
            println!("(no checkpoint given — training a smoke-scale native model first)");
            let (p, _) = study.pretrain_native(Tier::S8b).expect("pretrain");
            (p, study.tokenizer.clone())
        }
    };
    let n_questions: usize = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(study.config.n_eval_questions);

    let model = EvalModel {
        params: &params,
        tokenizer: &tokenizer,
    };
    let mut rng = Rng::seed_from(1234);
    let questions = {
        let mut qrng = rng.substream("subset");
        study.mcq.subset(n_questions, &mut qrng)
    };
    println!(
        "benchmarking {} parameters on {} questions",
        params.len(),
        questions.len()
    );

    for method in Method::all() {
        let score = evaluate(
            &model,
            &questions,
            &study.mcq.exemplars,
            method,
            &TokenEvalConfig::default(),
            &InstructEvalConfig::default(),
            &mut rng,
        );
        print!("  {:<36} {:5.1}%  ({}/{})", method.label(), score.percent(), score.correct, score.total);
        if method == Method::FullInstruct {
            let [json, pattern, interp, failed] = score.stages;
            print!("   answers via JSON {json} / pattern {pattern} / interpreter {interp} / failed {failed}");
        }
        println!();
    }
    println!("note: chance level is 25%.");
}
