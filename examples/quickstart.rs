//! Quickstart: the whole AstroMLab 2 pipeline in one sitting, at smoke
//! scale (≈ a minute on one CPU core).
//!
//! Generates the synthetic astronomy world and its MCQ benchmark, trains a
//! native base model, continually pretrains it on astro-ph-style AIC text,
//! and compares the two models with the base-model next-token method — the
//! paper's headline comparison, in miniature.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use astromlab::model::Tier;
use astromlab::eval::Method;
use astromlab::world::CorpusRecipe;
use astromlab::{Study, StudyConfig};

fn main() {
    let config = StudyConfig::smoke(42);
    println!("Preparing synthetic world + benchmark (seed {}) ...", config.seed);
    let study = Study::prepare(config).expect("prepare");
    println!(
        "  world: {} articles, {} facts | benchmark: {} MCQs (+{} exemplars) | vocab: {}",
        study.world.articles.len(),
        study.world.facts.len(),
        study.mcq.len(),
        study.mcq.exemplars.len(),
        study.tokenizer.vocab_size()
    );

    println!("Pretraining the native 70B-class stand-in ...");
    let (native, report) = study.pretrain_native(Tier::S70b).expect("pretrain");
    println!(
        "  {} steps, {} tokens, loss {:.3} → {:.3}",
        report.steps,
        report.tokens_processed,
        report.losses.first().map(|&(_, l)| l).unwrap_or(f32::NAN),
        report.tail_loss(3)
    );

    println!("Continual pretraining on the AIC recipe ...");
    let (astro, cpt_report) = study.cpt(&native, CorpusRecipe::Aic).expect("cpt");
    println!(
        "  {} steps, loss {:.3} → {:.3}",
        cpt_report.steps,
        cpt_report.losses.first().map(|&(_, l)| l).unwrap_or(f32::NAN),
        cpt_report.tail_loss(3)
    );

    println!("Evaluating both models (base-model token method) ...");
    let native_score = study.eval(&native, Method::TokenBase);
    let astro_score = study.eval(&astro, Method::TokenBase);
    println!(
        "  native   : {:5.1}%  ({}/{})",
        native_score.percent(),
        native_score.correct,
        native_score.total
    );
    println!(
        "  AstroLLaMA-style CPT: {:5.1}%  ({}/{})",
        astro_score.percent(),
        astro_score.correct,
        astro_score.total
    );
    let delta = astro_score.percent() - native_score.percent();
    let value = astromlab::eval::value::value_ratio(delta);
    println!(
        "  Δ = {delta:+.1} points → implied cost-efficiency ratio ≈ {value:.2}x \
         (paper: +2.1 points ≈ 4x)"
    );
    println!("Done. For the full Table I run: cargo run --release -p astro-bench --bin table1");
}
