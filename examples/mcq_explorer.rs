//! Explore the synthetic MCQ benchmark: print dataset statistics and
//! sample questions in the paper's Appendix-A presentation, plus the
//! exact prompts the two benchmarking methods send to the models.
//!
//! Usage:
//! ```sh
//! cargo run --release --example mcq_explorer -- [n_samples]
//! ```

use astromlab::mcq::prompts::{instruct_method_messages, token_method_prompt};
use astromlab::mcq::{McqConfig, McqDataset, LETTERS};
use astromlab::prng::Rng;
use astromlab::world::{FactTier, World, WorldConfig};

fn main() {
    let n_samples: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    let world = World::generate(42, WorldConfig::default());
    let mut rng = Rng::seed_from(42);
    let ds = McqDataset::generate(&world, &McqConfig::default(), &mut rng);

    println!("== benchmark statistics ==");
    println!(
        "articles: {}   questions: {} scored + {} exemplars (paper: 885 x 5 = 4,425)",
        world.articles.len(),
        ds.len(),
        ds.exemplars.len()
    );
    let (c, f, d) = ds.tier_fractions();
    println!("tier mix: consensus {:.0}%  frontier {:.0}%  detail {:.0}%", c * 100.0, f * 100.0, d * 100.0);
    let mut counts = [0usize; 4];
    for q in &ds.questions {
        counts[q.answer] += 1;
    }
    println!(
        "answer-key balance: A {} / B {} / C {} / D {}",
        counts[0], counts[1], counts[2], counts[3]
    );

    println!("\n== sample questions (Appendix-A style) ==");
    let mut srng = Rng::seed_from(7);
    for q in ds.subset(n_samples, &mut srng) {
        let article = &world.articles[q.article];
        println!("\nPaper ID: {}", article.araa_id);
        println!("Question: {}", q.question);
        for (letter, opt) in LETTERS.iter().zip(q.options.iter()) {
            println!("({letter}) {opt}");
        }
        println!("Correct Answer: {}", q.answer_letter());
        let tier_note = match q.tier {
            FactTier::Consensus => "textbook consensus (answerable from general pretraining)",
            FactTier::Frontier => "research frontier (requires astro-ph CPT)",
            FactTier::Detail => "full-text detail (requires the Summary recipe)",
        };
        println!("Tier: {tier_note}");
    }

    println!("\n== the two-shot next-token prompt (Appendix C) ==");
    println!("{}", token_method_prompt(&ds.questions[0], &ds.exemplars, 2));

    println!("\n== the full-instruct prompt (Appendix B) ==");
    let (system, user) = instruct_method_messages(&ds.questions[0], true);
    println!("[system] {system}");
    println!("[user] {user}");
}
