//! Train one AstroLLaMA-style model end to end — CPT then SFT — and save
//! checkpoints, mirroring the paper's §III training recipe (cosine decay,
//! 0.03 warmup, bf16, the 1/3-astronomy SFT mixture) at CPU scale.
//!
//! Usage:
//! ```sh
//! cargo run --release --example train_astrollama -- [7b|8b|70b] [abstract|aic|summary] [out_dir]
//! ```
//! Defaults: `70b aic target/astrollama`.

use astromlab::eval::Method;
use astromlab::model::{serial, Tier};
use astromlab::world::CorpusRecipe;
use astromlab::{Study, StudyConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tier = match args.get(1).map(|s| s.as_str()) {
        Some("7b") => Tier::S7b,
        Some("8b") => Tier::S8b,
        None | Some("70b") => Tier::S70b,
        Some(other) => {
            eprintln!("unknown tier {other:?}; use 7b|8b|70b");
            std::process::exit(2);
        }
    };
    let recipe = match args.get(2).map(|s| s.as_str()) {
        Some("abstract") => CorpusRecipe::Abstract,
        None | Some("aic") => CorpusRecipe::Aic,
        Some("summary") => CorpusRecipe::Summary,
        Some(other) => {
            eprintln!("unknown recipe {other:?}; use abstract|aic|summary");
            std::process::exit(2);
        }
    };
    let out_dir = std::path::PathBuf::from(
        args.get(3).cloned().unwrap_or_else(|| "target/astrollama".to_string()),
    );
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    println!("== AstroLLaMA trainer: tier {} recipe {} ==", tier.label(), recipe.label());
    let study = Study::prepare(StudyConfig::smoke(7)).expect("prepare");

    println!("[1/3] pretraining native base ({} params) ...", study.model_config(tier).param_count());
    let (native, _) = study.pretrain_native(tier).expect("pretrain");

    println!("[2/3] continual pretraining on {} corpus ({} tokens packed) ...",
        recipe.label(), study.cpt_stream(recipe).expect("prepared").len());
    let (base, cpt_report) = study.cpt(&native, recipe).expect("cpt");
    println!(
        "      CPT loss {:.3} → {:.3}",
        cpt_report.losses.first().map(|&(_, l)| l).unwrap_or(f32::NAN),
        cpt_report.tail_loss(3)
    );

    println!("[3/3] SFT on the paper's conversation mixture ({} examples) ...", study.sft_examples.len());
    let (instruct, sft_report) = study.sft(&base, "example").expect("sft");
    println!(
        "      SFT loss {:.3} → {:.3}",
        sft_report.losses.first().map(|&(_, l)| l).unwrap_or(f32::NAN),
        sft_report.tail_loss(3)
    );

    // Save both checkpoints + tokenizer.
    let base_path = out_dir.join("base.ckpt");
    let instruct_path = out_dir.join("instruct.ckpt");
    let tok_path = out_dir.join("tokenizer.bin");
    serial::save_checkpoint(&base, &base_path).expect("save base");
    serial::save_checkpoint(&instruct, &instruct_path).expect("save instruct");
    std::fs::write(&tok_path, study.tokenizer.to_bytes()).expect("save tokenizer");
    println!("saved: {} | {} | {}", base_path.display(), instruct_path.display(), tok_path.display());

    // Round-trip sanity + a quick benchmark comparison.
    let reloaded = serial::load_checkpoint(&base_path).expect("reload");
    assert_eq!(reloaded.data, base.data, "checkpoint round-trip mismatch");

    for (label, params, method) in [
        ("base / token-base", &base, Method::TokenBase),
        ("instruct / token-instruct", &instruct, Method::TokenInstruct),
        ("instruct / full-instruct", &instruct, Method::FullInstruct),
    ] {
        let s = study.eval(params, method);
        println!("  {label:<28} {:5.1}%  ({}/{})", s.percent(), s.correct, s.total);
    }
}
