//! Cross-crate consistency between the world, the benchmark and the
//! evaluation prompts — the invariants that make the MCQ scores
//! meaningful.

use astromlab::mcq::prompts::{render_block, token_method_prompt};
use astromlab::mcq::{McqConfig, McqDataset};
use astromlab::prng::Rng;
use astromlab::world::{
    exam_primer_doc, general_corpus, DocumentKind, FactTier, World, WorldConfig,
};

fn world_and_dataset(seed: u64) -> (World, McqDataset) {
    let world = World::generate(seed, WorldConfig::small());
    let mut rng = Rng::seed_from(seed);
    let ds = McqDataset::generate(&world, &McqConfig::default(), &mut rng);
    (world, ds)
}

#[test]
fn every_mcq_answer_is_the_world_fact() {
    let (world, ds) = world_and_dataset(401);
    for q in &ds.questions {
        let fact = &world.facts[q.fact];
        assert_eq!(q.options[q.answer], fact.value);
        assert!(q.question.contains(&world.entities[fact.entity].name));
        assert!(q.question.contains(fact.relation.phrase()));
    }
}

#[test]
fn exam_primer_and_eval_prompt_share_the_surface_form() {
    // The primer documents in the general corpus must use the exact
    // "Question:/A:/.../Answer:" skeleton the evaluation prompt uses —
    // otherwise the token method would test an unseen format.
    let (_, ds) = world_and_dataset(402);
    let q = &ds.questions[0];
    let eval_block = render_block(q, false);
    let primer = exam_primer_doc(
        &q.question,
        &[
            q.options[0].as_str(),
            q.options[1].as_str(),
            q.options[2].as_str(),
            q.options[3].as_str(),
        ],
        q.answer,
    );
    // The primer is the eval block plus the answer value.
    assert!(primer.starts_with(&eval_block));
    assert_eq!(primer.len(), eval_block.len() + 1 + q.options[q.answer].len());
}

#[test]
fn general_corpus_primers_parse_as_mcq_blocks() {
    let world = World::generate(403, WorldConfig::small());
    let mut rng = Rng::seed_from(403);
    let docs = general_corpus(&world, 400, &mut rng);
    let primers: Vec<_> = docs
        .iter()
        .filter(|d| d.kind == DocumentKind::ExamPrimer)
        .collect();
    assert!(!primers.is_empty());
    for p in primers {
        // Each MCQ block uses the canonical skeleton (optionally preceded
        // by a supporting-fact context line).
        assert!(p.text.contains("Question: "), "{}", p.text);
        for letter in ["\nA: ", "\nB: ", "\nC: ", "\nD: "] {
            assert!(p.text.contains(letter), "{}", p.text);
        }
        let last_line = p.text.lines().last().unwrap_or("");
        assert!(last_line.starts_with("Answer: "), "{}", p.text);
        // Every question has its answer line.
        assert_eq!(
            p.text.matches("Question: ").count(),
            p.text.matches("Answer: ").count(),
            "{}",
            p.text
        );
    }
}

#[test]
fn two_shot_prompt_ends_unanswered_and_exemplars_are_not_the_test_question() {
    let (_, ds) = world_and_dataset(404);
    for q in ds.questions.iter().take(20) {
        let prompt = token_method_prompt(q, &ds.exemplars, 2);
        // The prompt ends at "Answer:" for the test question.
        assert!(prompt.ends_with("Answer:"));
        // No exemplar is the test question verbatim (same question and
        // same option arrangement).
        for ex in &ds.exemplars {
            assert!(!(ex.question == q.question && ex.options == q.options));
        }
    }
}

#[test]
fn frontier_questions_are_not_answerable_from_general_corpus() {
    // Frontier facts must never be rendered into the general corpus —
    // that separation is what makes CPT measurable.
    let world = World::generate(405, WorldConfig::small());
    let mut rng = Rng::seed_from(405);
    let docs = general_corpus(&world, 600, &mut rng);
    let all_text: String = docs.iter().map(|d| d.text.as_str()).collect();
    for fact in world.facts_of_tier(FactTier::Frontier) {
        let entity = &world.entities[fact.entity];
        // The specific pairing "<relation> of <entity> is <value>" must
        // not appear.
        let pairing = format!("{} of {} is {}", fact.relation.phrase(), entity.name, fact.value);
        assert!(
            !all_text.contains(&pairing),
            "frontier fact leaked into general corpus: {pairing}"
        );
    }
}
