//! End-to-end gateway tests over real sockets: bitwise parity with the
//! in-process serial path, the admission-control status matrix,
//! graceful drain with zero accepted-request loss, injected gateway
//! faults, and a hard abort mid-burst.
//!
//! The fault registry and the metrics registry are process-global, so
//! every test takes `GATE` (same pattern as `tests/resilience_chaos.rs`).

use astro_gateway::{client, Gateway, GatewayConfig, GatewayState};
use astromlab::eval::json::Json;
use astromlab::eval::{
    instruct_method_answer, token_method_predict, EvalModel, InstructEvalConfig, TokenEvalConfig,
};
use astromlab::mcq::Mcq;
use astromlab::model::{Params, Tier};
use astromlab::prng::Rng;
use astromlab::{Study, StudyConfig};
use astro_resilience::fault::{self, FaultPlan};
use astro_telemetry::event::write_json_string;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

const TIMEOUT: Duration = Duration::from_secs(30);

struct Ctx {
    study: Study,
    params: Arc<Params>,
    state: GatewayState,
}

fn setup(seed: u64) -> Ctx {
    let study = Study::prepare(StudyConfig::micro(seed)).expect("prepare");
    let params = Arc::new(Params::init(
        study.model_config(Tier::S7b),
        &mut Rng::seed_from(seed + 1),
    ));
    let state = GatewayState {
        params: Arc::clone(&params),
        tokenizer: Arc::new(study.tokenizer.clone()),
        exemplars: Arc::new(study.mcq.exemplars.clone()),
        token_config: TokenEvalConfig::default(),
        instruct_config: InstructEvalConfig::default(),
    };
    Ctx {
        study,
        params,
        state,
    }
}

fn score_body(q: &Mcq, client_id: Option<&str>) -> String {
    let mut out = String::from("{\"question\":");
    write_json_string(&mut out, &q.question);
    out.push_str(",\"options\":[");
    for (i, opt) in q.options.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, opt);
    }
    out.push_str(&format!("],\"group\":{}", q.article));
    if let Some(c) = client_id {
        out.push_str(",\"client\":");
        write_json_string(&mut out, c);
    }
    out.push('}');
    out
}

fn generate_body(q: &Mcq, seed: u64) -> String {
    let mut out = score_body(q, None);
    out.pop();
    out.push_str(&format!(",\"seed\":{seed}}}"));
    out
}

fn json_u32s(v: &Json, key: &str) -> Vec<u32> {
    let Some(Json::Array(items)) = v.get(key) else {
        panic!("missing array {key:?} in {v:?}");
    };
    items
        .iter()
        .map(|i| match i {
            Json::Number(n) => *n as u32,
            other => panic!("{key:?} entry not a number: {other:?}"),
        })
        .collect()
}

fn counter_value(name: &str) -> u64 {
    astro_telemetry::metrics::snapshot()
        .counters
        .into_iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v)
        .unwrap_or(0)
}

#[test]
fn socket_responses_match_in_process_serial_path_bitwise() {
    let _gate = gate();
    fault::clear();
    let ctx = setup(41);
    let model = EvalModel {
        params: &ctx.params,
        tokenizer: &ctx.state.tokenizer,
    };
    let questions = ctx.study.eval_questions();
    let n = questions.len().min(3);
    let gw = Gateway::spawn(GatewayConfig::default(), ctx.state.clone()).expect("spawn");
    let addr = gw.addr();

    for (i, q) in questions.iter().take(n).enumerate() {
        // Token method over the socket vs in-process serial.
        let resp = client::post_json(addr, "/v1/score", &score_body(q, None), TIMEOUT)
            .expect("score request");
        assert_eq!(resp.status, 200, "q{i}: {}", resp.body);
        let v = Json::parse(&resp.body).expect("score body parses");
        let got_bits = json_u32s(&v, "score_bits");
        let (ref_pred, ref_scores) =
            token_method_predict(&model, q, &ctx.study.mcq.exemplars, &ctx.state.token_config);
        let ref_bits: Vec<u32> = ref_scores.iter().map(|s| s.to_bits()).collect();
        assert_eq!(got_bits, ref_bits, "q{i}: score bits diverged");
        match v.get("prediction") {
            Some(Json::Number(p)) => assert_eq!(*p as usize, ref_pred, "q{i}: prediction"),
            other => panic!("q{i}: bad prediction {other:?}"),
        }

        // Full-instruct method with a per-request seed.
        let seed = 900 + i as u64;
        let resp = client::post_json(addr, "/v1/generate", &generate_body(q, seed), TIMEOUT)
            .expect("generate request");
        assert_eq!(resp.status, 200, "q{i}: {}", resp.body);
        let v = Json::parse(&resp.body).expect("generate body parses");
        let mut rng = Rng::seed_from(seed);
        let reference = instruct_method_answer(&model, q, &ctx.state.instruct_config, &mut rng);
        assert!(reference.error.is_none());
        assert_eq!(
            v.get("raw").and_then(Json::as_str),
            Some(reference.raw.as_str()),
            "q{i}: raw generation diverged"
        );
        match (v.get("prediction"), reference.prediction) {
            (Some(Json::Number(p)), Some(r)) => assert_eq!(*p as usize, r, "q{i}"),
            (Some(Json::Null), None) => {}
            (got, want) => panic!("q{i}: prediction {got:?} vs {want:?}"),
        }
    }

    let stats = gw.shutdown();
    assert!(stats.drained_clean, "{stats:?}");
    assert_eq!(stats.accepted, 2 * n as u64);
    assert_eq!(stats.accepted, stats.completed);
}

#[test]
fn admission_control_status_matrix() {
    let _gate = gate();
    fault::clear();
    let ctx = setup(43);
    let config = GatewayConfig {
        rate_per_sec: 0.5,
        burst: 2.0,
        max_body_bytes: 4096,
        ..GatewayConfig::default()
    };
    let gw = Gateway::spawn(config, ctx.state.clone()).expect("spawn");
    let addr = gw.addr();
    let q = ctx.study.eval_questions()[0].clone();

    // Routing and health.
    let resp = client::get(addr, "/healthz", TIMEOUT).expect("healthz");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("\"status\":\"ok\""), "{}", resp.body);
    let resp = client::get(addr, "/metricsz", TIMEOUT).expect("metricsz");
    assert_eq!(resp.status, 200);
    assert!(Json::parse(&resp.body).is_ok(), "{}", resp.body);
    assert_eq!(client::get(addr, "/v1/score", TIMEOUT).expect("405").status, 405);
    assert_eq!(client::get(addr, "/nope", TIMEOUT).expect("404").status, 404);

    // Schema errors.
    let resp = client::post_json(addr, "/v1/score", "not json", TIMEOUT).expect("400");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("invalid JSON"), "{}", resp.body);

    // Payload bound: declared body larger than max_body_bytes.
    let huge = format!(
        "{{\"question\":\"{}\",\"options\":[\"a\",\"b\",\"c\",\"d\"]}}",
        "x".repeat(8192)
    );
    let resp = client::post_json(addr, "/v1/score", &huge, TIMEOUT).expect("413");
    assert_eq!(resp.status, 413, "{}", resp.body);

    // Rate limit: burst of 2, then a 429 with Retry-After.
    let body = score_body(&q, Some("greedy-client"));
    for i in 0..2 {
        let resp = client::post_json(addr, "/v1/score", &body, TIMEOUT).expect("burst");
        assert_eq!(resp.status, 200, "burst {i}: {}", resp.body);
    }
    let resp = client::post_json(addr, "/v1/score", &body, TIMEOUT).expect("limited");
    assert_eq!(resp.status, 429, "{}", resp.body);
    let retry: u64 = resp
        .header("Retry-After")
        .and_then(|v| v.parse().ok())
        .expect("Retry-After header");
    assert!(retry >= 1);
    // A different client identity is unaffected.
    let other = score_body(&q, Some("patient-client"));
    let resp = client::post_json(addr, "/v1/score", &other, TIMEOUT).expect("other client");
    assert_eq!(resp.status, 200, "{}", resp.body);

    let stats = gw.shutdown();
    assert!(stats.drained_clean, "{stats:?}");
}

#[test]
fn graceful_drain_answers_every_accepted_request() {
    let _gate = gate();
    fault::clear();
    let ctx = setup(47);
    let gw = Gateway::spawn(GatewayConfig::default(), ctx.state.clone()).expect("spawn");
    let addr = gw.addr();
    let questions: Vec<Mcq> = ctx
        .study
        .eval_questions()
        .into_iter()
        .cloned()
        .collect();

    // A burst of concurrent clients, then shutdown while they are in
    // flight. Every request the gateway accepted must get a real answer;
    // late arrivals may see 503 (draining) or a refused connect — both
    // typed, never a hang or a torn response.
    let oks = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|t| {
                let q = questions[t % questions.len()].clone();
                let body = score_body(&q, Some(&format!("drain-client-{t}")));
                scope.spawn(move || {
                    let mut oks = 0;
                    for _ in 0..2 {
                        match client::post_json(addr, "/v1/score", &body, TIMEOUT) {
                            Ok(resp) if resp.status == 200 => {
                                assert!(Json::parse(&resp.body).is_ok(), "{}", resp.body);
                                oks += 1;
                            }
                            Ok(resp) => assert_eq!(resp.status, 503, "{}", resp.body),
                            Err(_refused_or_reset) => {}
                        }
                    }
                    oks
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        let stats = gw.shutdown();
        assert!(stats.drained_clean, "{stats:?}");
        assert_eq!(stats.accepted, stats.completed, "{stats:?}");
        handles.into_iter().map(|h| h.join().expect("client")).sum::<u64>()
    });
    assert!(oks > 0, "no request completed before the drain");
}

#[test]
fn injected_gateway_faults_are_absorbed_without_panics() {
    let _gate = gate();
    fault::clear();
    let panics_before = counter_value("gateway.handler_panics");
    let ctx = setup(53);
    let gw = Gateway::spawn(GatewayConfig::default(), ctx.state.clone()).expect("spawn");
    let addr = gw.addr();

    // accept_fail: the next connection is dropped before a handler
    // exists; the client sees a typed transport error and a retry works.
    fault::install(FaultPlan::single("gateway.accept_fail", 1));
    let dropped = client::get(addr, "/healthz", Duration::from_secs(2));
    assert!(dropped.is_err(), "dropped connection should error: {dropped:?}");
    assert!(fault::fired("gateway.accept_fail"));
    let resp = client::get(addr, "/healthz", TIMEOUT).expect("retry after accept_fail");
    assert_eq!(resp.status, 200);
    fault::clear();

    // slow_client: the handler answers 408 exactly like a read timeout.
    fault::install(FaultPlan::single("gateway.slow_client", 1));
    let resp = client::get(addr, "/healthz", TIMEOUT).expect("slow client response");
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(fault::fired("gateway.slow_client"));
    fault::clear();

    let resp = client::get(addr, "/healthz", TIMEOUT).expect("healthy again");
    assert_eq!(resp.status, 200);
    let stats = gw.shutdown();
    assert!(stats.drained_clean, "{stats:?}");
    assert_eq!(counter_value("gateway.handler_panics"), panics_before);
}

#[test]
fn abort_mid_burst_yields_typed_errors() {
    let _gate = gate();
    fault::clear();
    let panics_before = counter_value("gateway.handler_panics");
    let ctx = setup(59);
    let gw = Gateway::spawn(GatewayConfig::default(), ctx.state.clone()).expect("spawn");
    let addr = gw.addr();
    let q = ctx.study.eval_questions()[0].clone();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let body = score_body(&q, Some(&format!("abort-client-{t}")));
                scope.spawn(move || {
                    for _ in 0..3 {
                        match client::post_json(addr, "/v1/score", &body, TIMEOUT) {
                            // Completed before the abort, rejected during
                            // it, or refused after it — all acceptable,
                            // all typed.
                            Ok(resp) => assert!(
                                matches!(resp.status, 200 | 503 | 504),
                                "unexpected status {}: {}",
                                resp.status,
                                resp.body
                            ),
                            Err(_refused_or_reset) => {}
                        }
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        gw.abort();
        for h in handles {
            h.join().expect("client thread");
        }
    });
    assert_eq!(counter_value("gateway.handler_panics"), panics_before);
}
