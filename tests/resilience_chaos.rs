//! Chaos harness: deterministic fault injection against the resumable
//! study pipeline (`Study::run_study`).
//!
//! What is proven here:
//!
//! * **Kill at every ledger boundary.** A `study.stage_boundary` fault
//!   aborts the run immediately after each stage becomes durable; the
//!   sweep kills a single run lineage at *every* boundary in turn and
//!   resumes each time, so each of the ~37 micro-preset stages is
//!   crossed exactly once by a process that then "crashed". The final
//!   resumed result must be bitwise identical (CSV string equality and
//!   `f64::to_bits` on every score) to an uninterrupted in-memory run.
//! * **Golden tie-in.** At smoke scale, a run killed mid-pipeline and
//!   resumed must reproduce `goldens/figure1_smoke_seed11.golden`
//!   exactly — resume is held to the same regression baseline as the
//!   uninterrupted pipeline.
//! * **No fault escapes as a panic.** For every fault site in
//!   [`astro_resilience::SITES`], a single injected fault either (a) is
//!   absorbed and the result is bitwise identical, or (b) surfaces as a
//!   typed [`StudyError`] after which a resume completes bitwise
//!   identically. `catch_unwind` asserts no panic crosses the API.
//! * **Durability edge cases.** A torn ledger tail (crash mid-append)
//!   and a truncated checkpoint are both detected and rebuilt, never
//!   trusted.
//!
//! The fault registry is process-global, so every test takes `GATE`
//! first; this file is its own test binary, and cargo runs binaries
//! sequentially, so no other test can observe an armed plan.

use astro_resilience::fault::{self, FaultPlan};
use astro_resilience::{Journal, SITES};
use astromlab::study::{StudyError, StudyResult};
use astromlab::{Study, StudyConfig};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

static GATE: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("astro-chaos-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn micro_study() -> Study {
    Study::prepare(StudyConfig::micro(11)).expect("micro prepare")
}

fn ledger_lines(dir: &Path) -> Vec<String> {
    Journal::at(&dir.join("ledger.jsonl")).lines().expect("readable ledger")
}

/// Every score as raw bits: `==` on these is bitwise equality, immune to
/// NaN/-0.0 subtleties that `f64: PartialEq` could mask.
fn score_bits(r: &StudyResult) -> Vec<[Option<u64>; 3]> {
    r.scores.iter().map(|(_, s)| s.map(|v| v.map(f64::to_bits))).collect()
}

/// The uninterrupted in-memory baseline for `micro(11)`, computed once
/// per process (callers hold `GATE` and have cleared any fault plan).
fn micro_baseline() -> &'static StudyResult {
    static BASELINE: OnceLock<StudyResult> = OnceLock::new();
    BASELINE.get_or_init(|| micro_study().run_table1().expect("baseline run_table1"))
}

fn assert_bitwise_identical(got: &StudyResult, want: &StudyResult, context: &str) {
    assert_eq!(got.figure1_csv, want.figure1_csv, "{context}: figure1 CSV drifted");
    assert_eq!(score_bits(got), score_bits(want), "{context}: score bits drifted");
}

#[test]
fn kill_at_every_ledger_boundary_then_resume_is_bitwise_identical() {
    let _g = locked();
    fault::clear();
    let study = micro_study();
    let base = micro_baseline();
    let dir = fresh_dir("boundary-sweep");

    // Each iteration resumes the same lineage with a fault armed to fire
    // at the FIRST fresh stage boundary: completed stages replay from
    // the ledger (no boundary crossing), the next stage runs, commits,
    // and the run "crashes". Every boundary is therefore killed at
    // exactly once across the sweep.
    let mut kills = 0usize;
    let result = loop {
        fault::install(FaultPlan::single("study.stage_boundary", 1));
        let outcome = study.run_study(&dir);
        fault::clear();
        match outcome {
            Err(StudyError::Interrupted { site, stage }) => {
                kills += 1;
                assert!(kills < 200, "boundary sweep did not converge");
                assert_eq!(site, "study.stage_boundary");
                // The interrupted stage was durable before the "crash":
                // fingerprint + one ledger line per killed boundary.
                let lines = ledger_lines(&dir);
                assert_eq!(
                    lines.len(),
                    kills + 1,
                    "after killing at stage {stage} the ledger should hold \
                     exactly the completed stages"
                );
            }
            Err(other) => panic!("boundary sweep hit an unexpected error: {other}"),
            // A full-replay pass crossed no fresh boundary: done.
            Ok(r) => break r,
        }
    };
    let stages = ledger_lines(&dir).len() - 1; // minus fingerprint line
    assert_eq!(kills, stages, "every ledger boundary must have been killed at once");
    assert!(stages > 30, "micro preset should exercise all pipeline stages, got {stages}");
    assert_bitwise_identical(&result, base, "boundary sweep");
}

#[test]
fn any_single_injected_fault_is_typed_or_absorbed_never_a_panic() {
    let _g = locked();
    fault::clear();
    let study = micro_study();
    let base = micro_baseline();
    // One deterministic hit count per site, spread so faults land in
    // different pipeline phases (early training, mid-run, deep eval).
    // The gateway.* sites (including gateway.queue_poison) have no hook
    // in the study pipeline, so their plans must simply never fire — the
    // sweep proves installing them is harmless to a run that does not
    // cross them. pool.pending_poison kills an eval worker *after* its
    // job completed (valid-state poison), so the pool must degrade and
    // the scores stay bitwise identical.
    let hits: &[u64] = &[3, 1, 5, 2, 7, 4, 1, 1, 1, 2];
    assert_eq!(hits.len(), SITES.len(), "one planned hit per fault site");
    for (site, &hit) in SITES.iter().zip(hits) {
        let dir = fresh_dir(&format!("prop-{}", site.replace('.', "-")));
        fault::install(FaultPlan::single(site, hit));
        let outcome = catch_unwind(AssertUnwindSafe(|| study.run_study(&dir)));
        fault::clear();
        let outcome =
            outcome.unwrap_or_else(|_| panic!("fault {site}@{hit} escaped as a panic"));
        match outcome {
            // Absorbed (degraded pool, uncached retry, unfired trigger):
            // the result must not have been perturbed.
            Ok(r) => assert_bitwise_identical(&r, base, &format!("absorbed fault {site}@{hit}")),
            // Surfaced: must be typed (it is, by construction) and the
            // ledger must support a clean, identical resume.
            Err(err) => {
                let resumed = study.run_study(&dir).unwrap_or_else(|e| {
                    panic!("resume after fault {site}@{hit} ({err}) failed: {e}")
                });
                assert_bitwise_identical(
                    &resumed,
                    base,
                    &format!("resume after fault {site}@{hit} ({err})"),
                );
            }
        }
    }
}

#[test]
fn torn_ledger_tail_and_truncated_checkpoint_are_rebuilt() {
    let _g = locked();
    fault::clear();
    let study = micro_study();
    let dir = fresh_dir("durability");
    let first = study.run_study(&dir).expect("first run");
    assert_bitwise_identical(&first, micro_baseline(), "uninterrupted run_study");

    // Crash mid-append: a torn (newline-less) trailing line must be
    // dropped on replay, not poison the ledger.
    let ledger = dir.join("ledger.jsonl");
    let mut bytes = std::fs::read(&ledger).expect("ledger bytes");
    bytes.extend_from_slice(br#"{"stage":"torn-"#);
    std::fs::write(&ledger, &bytes).expect("append torn tail");

    // Bit rot / partial write: a ledgered checkpoint that no longer
    // matches its recorded digest must be rebuilt, not loaded.
    let victim = dir.join("native-7B-class.ckpt");
    let ckpt = std::fs::read(&victim).expect("checkpoint bytes");
    std::fs::write(&victim, &ckpt[..ckpt.len() / 2]).expect("truncate checkpoint");

    let second = study.run_study(&dir).expect("re-run over damaged artifacts");
    assert_bitwise_identical(&second, &first, "re-run after torn tail + truncated checkpoint");
}

#[test]
fn ledger_of_a_different_study_is_rejected() {
    let _g = locked();
    fault::clear();
    let dir = fresh_dir("foreign");
    // Populate the ledger cheaply: kill the first run at its first
    // stage boundary.
    let study = micro_study();
    fault::install(FaultPlan::single("study.stage_boundary", 1));
    let outcome = study.run_study(&dir);
    fault::clear();
    assert!(matches!(outcome, Err(StudyError::Interrupted { .. })));

    let other = Study::prepare(StudyConfig::micro(12)).expect("prepare seed 12");
    match other.run_study(&dir) {
        Err(StudyError::Ledger(msg)) => {
            assert!(msg.contains("fingerprint"), "unexpected message: {msg}")
        }
        Ok(_) => panic!("a foreign ledger must not be resumed"),
        Err(other) => panic!("expected a Ledger error, got {other}"),
    }
}

#[test]
fn killed_and_resumed_smoke_run_reproduces_the_golden() {
    let _g = locked();
    fault::clear();
    let study = Study::prepare(StudyConfig::smoke(11)).expect("smoke prepare");
    let dir = fresh_dir("smoke-golden");

    // Kill mid-pipeline (boundary 15 lands inside the CPT/SFT stages).
    fault::install(FaultPlan::single("study.stage_boundary", 15));
    let outcome = study.run_study(&dir);
    fault::clear();
    assert!(
        matches!(outcome, Err(StudyError::Interrupted { .. })),
        "the mid-run kill should interrupt the smoke run"
    );

    let resumed = study.run_study(&dir).expect("resume");
    let golden_path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("goldens/figure1_smoke_seed11.golden");
    let golden = std::fs::read_to_string(golden_path).expect("checked-in smoke golden");
    assert_eq!(
        resumed.figure1_csv, golden,
        "a killed-and-resumed smoke run must reproduce the same golden \
         scores as the uninterrupted pipeline (see tests/golden_scores.rs)"
    );
}
