//! Checkpoint + tokenizer persistence: a trained model saved and reloaded
//! must reproduce its evaluation results exactly.

use astromlab::eval::Method;
use astromlab::model::{serial, Tier};
use astromlab::tokenizer::Tokenizer;
use astromlab::{Study, StudyConfig};

#[test]
fn saved_model_scores_identically_after_reload() {
    let study = Study::prepare(StudyConfig::smoke(301)).expect("prepare");
    let (native, _) = study.pretrain_native(Tier::S7b).expect("pretrain");
    let before = study.eval(&native, Method::TokenBase);

    let dir = std::env::temp_dir().join("astromlab_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("native.ckpt");
    serial::save_checkpoint(&native, &ckpt).unwrap();
    let reloaded = serial::load_checkpoint(&ckpt).unwrap();
    assert_eq!(reloaded.data, native.data);

    let after = study.eval(&reloaded, Method::TokenBase);
    assert_eq!(before.correct, after.correct);
    assert_eq!(before.total, after.total);
    let _ = std::fs::remove_file(&ckpt);
}

#[test]
fn tokenizer_blob_round_trips_through_disk() {
    let study = Study::prepare(StudyConfig::smoke(302)).expect("prepare");
    let dir = std::env::temp_dir().join("astromlab_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tok.bin");
    std::fs::write(&path, study.tokenizer.to_bytes()).unwrap();
    let blob = std::fs::read(&path).unwrap();
    let restored = Tokenizer::from_bytes(&blob).unwrap();
    let sample = &study.mcq.questions[0].question;
    assert_eq!(study.tokenizer.encode(sample), restored.encode(sample));
    let _ = std::fs::remove_file(&path);
}
