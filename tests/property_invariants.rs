//! Property-style tests over cross-crate invariants.
//!
//! Previously written with `proptest`; rewritten as deterministic
//! randomized sweeps driven by `astro-prng` so the workspace has no
//! external dependencies (the container builds offline). Each property
//! runs a fixed number of seeded cases — failures reproduce exactly.

use astro_prng::Rng;
use astro_tensor::bf16::{bf16_from_bits, bf16_round};
use astro_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b};
use astro_tokenizer::{train_bpe, BpeTrainerConfig, Tokenizer};

const CASES: u64 = 64;

fn reference_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f64;
            for kk in 0..k {
                s += (a[i * k + kk] as f64) * (b[kk * n + j] as f64);
            }
            out[i * n + j] = s as f32;
        }
    }
    out
}

fn shared_tokenizer() -> Tokenizer {
    train_bpe(
        &["the star of the galaxy shines on the answer A B C D ".repeat(4)],
        &BpeTrainerConfig {
            vocab_size: 300,
            min_pair_count: 2,
            ensure_pieces: Vec::new(),
        },
    )
}

/// Random usize in `[lo, hi)`.
fn size_in(rng: &mut Rng, lo: usize, hi: usize) -> usize {
    lo + rng.below((hi - lo) as u64) as usize
}

/// Blocked matmul agrees with the naive reference for random shapes.
#[test]
fn matmul_matches_reference() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(1000 + case);
        let (m, k, n) = (size_in(&mut rng, 1, 12), size_in(&mut rng, 1, 80), size_in(&mut rng, 1, 12));
        let a: Vec<f32> = (0..m * k).map(|_| rng.gauss_f32()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gauss_f32()).collect();
        let want = reference_matmul(&a, &b, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul(&mut got, &a, &b, m, k, n);
        for (g, w) in got.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-3 * (1.0 + w.abs()), "case {case}: {g} vs {w}");
        }
    }
}

/// The three orientations are consistent: `a·bᵀ` and `aᵀ·b` match the
/// reference product computed on explicitly transposed inputs.
#[test]
fn matmul_orientations_consistent() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(2000 + case);
        let (m, k, n) = (size_in(&mut rng, 1, 8), size_in(&mut rng, 1, 24), size_in(&mut rng, 1, 8));
        let a: Vec<f32> = (0..m * k).map(|_| rng.gauss_f32()).collect();
        let bt: Vec<f32> = (0..n * k).map(|_| rng.gauss_f32()).collect();
        // via a_bt
        let mut ab = vec![0.0f32; m * n];
        matmul_a_bt(&mut ab, &a, &bt, m, k, n);
        // reference: build b (k×n) explicitly
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let want = reference_matmul(&a, &b, m, k, n);
        for (g, w) in ab.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-3 * (1.0 + w.abs()), "case {case}");
        }
        // at_b: (aᵀ)ᵀ·b == a·b
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut atb = vec![0.0f32; m * n];
        matmul_at_b(&mut atb, &at, &b, m, k, n);
        for (g, w) in atb.iter().zip(want.iter()) {
            assert!((g - w).abs() < 1e-3 * (1.0 + w.abs()), "case {case}");
        }
    }
}

/// bf16 rounding is idempotent on representable values and within
/// half-ULP (relative 1/256) on normal values.
#[test]
fn bf16_round_properties() {
    // Idempotence over the whole representable space (it is only 2^16).
    for bits in 0..=u16::MAX {
        let v = bf16_from_bits(bits);
        if v.is_finite() {
            assert_eq!(bf16_round(v), v, "bits {bits:#06x}");
        }
    }
    // Relative error bound for random normal values across magnitudes.
    for case in 0..CASES {
        let mut rng = Rng::seed_from(3000 + case);
        for _ in 0..64 {
            // log-uniform magnitude in [1e-30, 1e30], random sign
            let exp = (rng.below(60) as i32 - 30) as f32;
            let mant = 1.0 + 9.0 * rng.below(1_000_000) as f32 / 1e6;
            let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
            let x = sign * mant * 10f32.powf(exp);
            if x.is_finite() && x.abs() > 1e-30 {
                let r = bf16_round(x);
                assert!(((r - x) / x).abs() <= 1.0 / 256.0 + 1e-7, "{x} → {r}");
            }
        }
    }
}

/// Tokenizer round-trip on random printable-ASCII and unicode strings.
#[test]
fn tokenizer_round_trip() {
    let tok = shared_tokenizer();
    // Printable ASCII.
    for case in 0..CASES {
        let mut rng = Rng::seed_from(4000 + case);
        let len = rng.below(200) as usize;
        let s: String = (0..len)
            .map(|_| char::from(b' ' + rng.below(95) as u8))
            .collect();
        assert_eq!(tok.decode(&tok.encode(&s)), s, "case {case}: {s:?}");
    }
    // Arbitrary unicode scalars (skip surrogates by construction).
    let pool: Vec<char> = "αβγδ星雲  galaxy ☉ σ Ori 🪐\n\tétoile".chars().collect();
    for case in 0..CASES {
        let mut rng = Rng::seed_from(5000 + case);
        let len = rng.below(60) as usize;
        let s: String = (0..len).map(|_| pool[rng.index(pool.len())]).collect();
        assert_eq!(tok.decode(&tok.encode(&s)), s, "case {case}: {s:?}");
    }
}

/// `Rng::below` is always in bounds and `Rng::shuffle` permutes.
#[test]
fn rng_bounds_and_shuffle() {
    for case in 0..CASES {
        let mut seed_rng = Rng::seed_from(6000 + case);
        let seed = seed_rng.below(u64::MAX);
        let bound = 1 + seed_rng.below(10_000);
        let mut rng = Rng::seed_from(seed);
        for _ in 0..50 {
            assert!(rng.below(bound) < bound);
        }
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }
}

/// Softmax rows are probability distributions for random logits.
#[test]
fn softmax_rows_are_distributions() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(7000 + case);
        let n = size_in(&mut rng, 1, 32);
        let mut x: Vec<f32> = (0..n).map(|_| rng.gauss_f32() * 10.0).collect();
        astro_tensor::ops::softmax_rows(&mut x, 1, n);
        let sum: f32 = x.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "case {case}: {sum}");
        assert!(x.iter().all(|&p| (0.0..=1.0).contains(&p)), "case {case}");
    }
}

/// Incremental (KV-cache) and batched forward agree for random tiny
/// models and random token sequences.
#[test]
fn incremental_matches_batched_for_random_inputs() {
    use astro_model::{InferenceSession, ModelConfig, Params, TrainContext};
    for case in 0..24 {
        let seed = 100 + case;
        let cfg = ModelConfig::tiny(24);
        let params = Params::init(cfg, &mut Rng::seed_from(seed));
        let mut trng = Rng::seed_from(seed ^ 0xdead);
        let len = 2 + trng.below(8) as usize;
        let tokens: Vec<u32> = (0..len).map(|_| trng.below(24) as u32).collect();
        let mut ctx = TrainContext::new(cfg, 1, len);
        ctx.forward(&params, &tokens);
        let mut sess = InferenceSession::new(cfg);
        for (i, &t) in tokens.iter().enumerate() {
            let logits = sess.feed(&params, t);
            for (a, b) in logits.iter().zip(ctx.logits[i * 24..(i + 1) * 24].iter()) {
                assert!((a - b).abs() < 1e-3, "case {case} pos {i}");
            }
        }
    }
}

/// Cloned inference sessions continue identically (the fork used by the
/// option-likelihood readout).
#[test]
fn session_fork_continues_identically() {
    use astro_model::{InferenceSession, ModelConfig, Params};
    for seed in 0..24 {
        let cfg = ModelConfig::tiny(16);
        let params = Params::init(cfg, &mut Rng::seed_from(seed));
        let mut sess = InferenceSession::new(cfg);
        sess.feed_prompt(&params, &[1, 2, 3]);
        let mut fork = sess.clone();
        let a = sess.feed(&params, 5).to_vec();
        let b = fork.feed(&params, 5).to_vec();
        assert_eq!(a, b, "seed {seed}");
    }
}

/// The cosine schedule never exceeds its peak and never hits zero.
#[test]
fn schedule_bounds() {
    use astro_train::CosineSchedule;
    for case in 0..CASES {
        let mut rng = Rng::seed_from(8000 + case);
        let total = 1 + rng.below(5000);
        let warmup = rng.below(500) as f64 / 1000.0;
        let s = CosineSchedule::new(1.0, total, warmup);
        for t in (0..total.min(200)).chain([total, total + 10]) {
            let lr = s.lr_at(t);
            assert!(lr > 0.0 && lr <= 1.0 + 1e-6, "case {case} t {t}: {lr}");
        }
    }
}

/// Bootstrap CIs always bracket the point estimate.
#[test]
fn bootstrap_brackets_estimate() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from(9000 + case);
        let p = 0.05 + 0.9 * rng.below(1000) as f64 / 1000.0;
        let n = 10 + rng.below(90) as usize;
        let sample: Vec<bool> = (0..n).map(|_| rng.chance(p)).collect();
        if sample.iter().any(|&b| b) && sample.iter().any(|&b| !b) {
            let point = 100.0 * sample.iter().filter(|&&b| b).count() as f64 / n as f64;
            let (lo, hi) = astro_eval::bootstrap_ci(&sample, 200, 0.95, &mut rng);
            assert!(lo <= point + 1e-9 && point <= hi + 1e-9, "case {case}: {lo} {point} {hi}");
        }
    }
}
