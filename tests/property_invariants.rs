//! Property-based tests over cross-crate invariants (proptest).

use astro_prng::Rng;
use astro_tensor::bf16::{bf16_from_bits, bf16_round};
use astro_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b};
use astro_tokenizer::{train_bpe, BpeTrainerConfig, Tokenizer};
use proptest::prelude::*;

fn reference_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f64;
            for kk in 0..k {
                s += (a[i * k + kk] as f64) * (b[kk * n + j] as f64);
            }
            out[i * n + j] = s as f32;
        }
    }
    out
}

fn shared_tokenizer() -> Tokenizer {
    train_bpe(
        &["the star of the galaxy shines on the answer A B C D ".repeat(4)],
        &BpeTrainerConfig {
            vocab_size: 300,
            min_pair_count: 2,
            ensure_pieces: Vec::new(),
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked matmul agrees with the naive reference for random shapes.
    #[test]
    fn matmul_matches_reference(
        m in 1usize..12,
        k in 1usize..80,
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gauss_f32()).collect();
        let b: Vec<f32> = (0..k * n).map(|_| rng.gauss_f32()).collect();
        let want = reference_matmul(&a, &b, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul(&mut got, &a, &b, m, k, n);
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-3 * (1.0 + w.abs()), "{g} vs {w}");
        }
    }

    /// The three orientations are consistent: (a·bᵀ)ᵀ == b·aᵀ and
    /// aᵀ·b computed via at_b equals the reference on transposed input.
    #[test]
    fn matmul_orientations_consistent(
        m in 1usize..8,
        k in 1usize..24,
        n in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = Rng::seed_from(seed);
        let a: Vec<f32> = (0..m * k).map(|_| rng.gauss_f32()).collect();
        let bt: Vec<f32> = (0..n * k).map(|_| rng.gauss_f32()).collect();
        // via a_bt
        let mut ab = vec![0.0f32; m * n];
        matmul_a_bt(&mut ab, &a, &bt, m, k, n);
        // reference: build b (k×n) explicitly
        let mut b = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b[kk * n + j] = bt[j * k + kk];
            }
        }
        let want = reference_matmul(&a, &b, m, k, n);
        for (g, w) in ab.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-3 * (1.0 + w.abs()));
        }
        // at_b: (aᵀ)ᵀ·b == a·b
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a[i * k + kk];
            }
        }
        let mut atb = vec![0.0f32; m * n];
        matmul_at_b(&mut atb, &at, &b, m, k, n);
        for (g, w) in atb.iter().zip(want.iter()) {
            prop_assert!((g - w).abs() < 1e-3 * (1.0 + w.abs()));
        }
    }

    /// bf16 rounding is idempotent, monotone and within half-ULP.
    #[test]
    fn bf16_round_properties(bits in any::<u16>(), x in -1e30f32..1e30) {
        // Idempotence on arbitrary representable values.
        let v = bf16_from_bits(bits);
        if v.is_finite() {
            prop_assert_eq!(bf16_round(v), v);
        }
        // Relative error bound for normal values.
        if x.is_finite() && x.abs() > 1e-30 {
            let r = bf16_round(x);
            prop_assert!(((r - x) / x).abs() <= 1.0 / 256.0 + 1e-7);
        }
    }

    /// Tokenizer round-trip on arbitrary ASCII-ish text.
    #[test]
    fn tokenizer_round_trip(s in "[ -~]{0,200}") {
        let tok = shared_tokenizer();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    /// Tokenizer round-trip on arbitrary unicode.
    #[test]
    fn tokenizer_round_trip_unicode(s in "\\PC{0,60}") {
        let tok = shared_tokenizer();
        prop_assert_eq!(tok.decode(&tok.encode(&s)), s);
    }

    /// Rng::below is always in bounds and Rng::shuffle permutes.
    #[test]
    fn rng_bounds_and_shuffle(seed in any::<u64>(), bound in 1u64..10_000) {
        let mut rng = Rng::seed_from(seed);
        for _ in 0..50 {
            prop_assert!(rng.below(bound) < bound);
        }
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
    }

    /// Softmax rows are probability distributions for random logits.
    #[test]
    fn softmax_rows_are_distributions(seed in any::<u64>(), n in 1usize..32) {
        let mut rng = Rng::seed_from(seed);
        let mut x: Vec<f32> = (0..n).map(|_| (rng.gauss_f32()) * 10.0).collect();
        astro_tensor::ops::softmax_rows(&mut x, 1, n);
        let sum: f32 = x.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(x.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Incremental (KV-cache) and batched forward agree for random tiny
    /// models and random token sequences.
    #[test]
    fn incremental_matches_batched_for_random_inputs(
        seed in 0u64..500,
        len in 2usize..10,
    ) {
        use astro_model::{InferenceSession, ModelConfig, Params, TrainContext};
        let cfg = ModelConfig::tiny(24);
        let params = Params::init(cfg, &mut Rng::seed_from(seed));
        let mut trng = Rng::seed_from(seed ^ 0xdead);
        let tokens: Vec<u32> = (0..len).map(|_| trng.below(24) as u32).collect();
        let mut ctx = TrainContext::new(cfg, 1, len);
        ctx.forward(&params, &tokens);
        let mut sess = InferenceSession::new(cfg);
        for (i, &t) in tokens.iter().enumerate() {
            let logits = sess.feed(&params, t);
            for (a, b) in logits.iter().zip(ctx.logits[i * 24..(i + 1) * 24].iter()) {
                prop_assert!((a - b).abs() < 1e-3, "pos {i}");
            }
        }
    }

    /// Cloned inference sessions continue identically (the fork used by
    /// the option-likelihood readout).
    #[test]
    fn session_fork_continues_identically(seed in 0u64..300) {
        use astro_model::{InferenceSession, ModelConfig, Params};
        let cfg = ModelConfig::tiny(16);
        let params = Params::init(cfg, &mut Rng::seed_from(seed));
        let mut sess = InferenceSession::new(cfg);
        sess.feed_prompt(&params, &[1, 2, 3]);
        let mut fork = sess.clone();
        let a = sess.feed(&params, 5).to_vec();
        let b = fork.feed(&params, 5).to_vec();
        prop_assert_eq!(a, b);
    }

    /// The cosine schedule never exceeds its peak and never hits zero.
    #[test]
    fn schedule_bounds(total in 1u64..5000, warmup in 0.0f64..0.5) {
        use astro_train::CosineSchedule;
        let s = CosineSchedule::new(1.0, total, warmup);
        for t in (0..total.min(200)).chain([total, total + 10]) {
            let lr = s.lr_at(t);
            prop_assert!(lr > 0.0 && lr <= 1.0 + 1e-6, "t {t}: {lr}");
        }
    }

    /// bootstrap CIs always bracket the point estimate.
    #[test]
    fn bootstrap_brackets_estimate(seed in any::<u64>(), p in 0.05f64..0.95, n in 10usize..100) {
        let mut rng = Rng::seed_from(seed);
        let sample: Vec<bool> = (0..n).map(|_| rng.chance(p)).collect();
        if sample.iter().any(|&b| b) && sample.iter().any(|&b| !b) {
            let point = 100.0 * sample.iter().filter(|&&b| b).count() as f64 / n as f64;
            let (lo, hi) = astro_eval::bootstrap_ci(&sample, 200, 0.95, &mut rng);
            prop_assert!(lo <= point + 1e-9 && point <= hi + 1e-9, "{lo} {point} {hi}");
        }
    }
}
