//! Cross-crate determinism: a study seed fully determines every artefact
//! — world, tokenizer, benchmark, trained weights and scores.

use astromlab::eval::Method;
use astromlab::model::Tier;
use astromlab::{Study, StudyConfig};

#[test]
fn same_seed_reproduces_scores_bitwise() {
    let run = |seed: u64| {
        let study = Study::prepare(StudyConfig::smoke(seed)).expect("prepare");
        let (native, _) = study.pretrain_native(Tier::S7b).expect("pretrain");
        let score = study.eval(&native, Method::TokenBase);
        (native.data, score.correct, score.total)
    };
    let (w1, c1, t1) = run(555);
    let (w2, c2, t2) = run(555);
    assert_eq!(w1, w2, "weights must be bit-identical across runs");
    assert_eq!((c1, t1), (c2, t2));
}

#[test]
fn different_seeds_give_different_worlds_and_weights() {
    let s1 = Study::prepare(StudyConfig::smoke(1)).expect("prepare");
    let s2 = Study::prepare(StudyConfig::smoke(2)).expect("prepare");
    // Worlds differ.
    let same_facts = s1
        .world
        .facts
        .iter()
        .zip(s2.world.facts.iter())
        .filter(|(a, b)| a.value == b.value)
        .count();
    assert!(same_facts < s1.world.facts.len());
    // Benchmarks differ.
    assert_ne!(
        s1.mcq.questions[0].question, s2.mcq.questions[0].question,
        "different seeds should give different benchmarks (very likely)"
    );
}

#[test]
fn tokenizer_is_deterministic_across_preparations() {
    let a = Study::prepare(StudyConfig::smoke(77)).expect("prepare");
    let b = Study::prepare(StudyConfig::smoke(77)).expect("prepare");
    assert_eq!(a.tokenizer.vocab_size(), b.tokenizer.vocab_size());
    let text = "The redshift of NGC-382 is 0.45.";
    assert_eq!(a.tokenizer.encode(text), b.tokenizer.encode(text));
}
