//! Trace-completeness property: every request the gateway answers —
//! success, admission rejection (429/413/503/504), schema error, or an
//! injected chaos fault (`gateway.accept_fail`, `gateway.slow_client`,
//! `serve.cache_full`) — leaves behind **exactly one** finished,
//! well-formed trace whose phases are monotonic and non-overlapping,
//! and the whole ring round-trips through the `astro-trace` analyzer.
//!
//! The trace ring, fault registry, and metrics registry are
//! process-global, so every test takes `GATE` (same pattern as
//! `tests/gateway_integration.rs`).

use astro_gateway::{client, Gateway, GatewayConfig, GatewayState};
use astro_resilience::fault::{self, FaultPlan};
use astro_telemetry::event::write_json_string;
use astro_telemetry::trace::{self, TraceRecord};
use astromlab::eval::{InstructEvalConfig, TokenEvalConfig};
use astromlab::mcq::Mcq;
use astromlab::model::{Params, Tier};
use astromlab::prng::Rng;
use astromlab::{Study, StudyConfig};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

const TIMEOUT: Duration = Duration::from_secs(30);

struct Ctx {
    study: Study,
    state: GatewayState,
}

fn setup(seed: u64) -> Ctx {
    let study = Study::prepare(StudyConfig::micro(seed)).expect("prepare");
    let params = Arc::new(Params::init(
        study.model_config(Tier::S7b),
        &mut Rng::seed_from(seed + 1),
    ));
    let state = GatewayState {
        params,
        tokenizer: Arc::new(study.tokenizer.clone()),
        exemplars: Arc::new(study.mcq.exemplars.clone()),
        token_config: TokenEvalConfig::default(),
        instruct_config: InstructEvalConfig::default(),
    };
    Ctx { study, state }
}

fn score_body(q: &Mcq, client_id: Option<&str>) -> String {
    let mut out = String::from("{\"question\":");
    write_json_string(&mut out, &q.question);
    out.push_str(",\"options\":[");
    for (i, opt) in q.options.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(&mut out, opt);
    }
    out.push_str(&format!("],\"group\":{}", q.article));
    if let Some(c) = client_id {
        out.push_str(",\"client\":");
        write_json_string(&mut out, c);
    }
    out.push('}');
    out
}

/// A finished trace is well-formed when its phases tile forward in time:
/// each phase starts no earlier than the previous one ended, and all of
/// them sit inside the trace envelope. Traces that never produced a
/// response (`status == 0`, e.g. `gateway.accept_fail`) may be phaseless.
fn assert_well_formed(rec: &TraceRecord) {
    assert!(
        rec.end_us >= rec.start_us,
        "{}: end {} before start {}",
        rec.name,
        rec.end_us,
        rec.start_us
    );
    if rec.status == 0 {
        return;
    }
    assert!(!rec.phases.is_empty(), "{} ({}): no phases", rec.name, rec.status);
    let mut cursor = rec.start_us;
    for p in &rec.phases {
        assert!(
            p.start_us >= cursor,
            "{} ({}): phase {} starts at {} before the previous phase ended at {}",
            rec.name,
            rec.status,
            p.name,
            p.start_us,
            cursor
        );
        assert!(p.end_us >= p.start_us, "{}: phase {} runs backwards", rec.name, p.name);
        assert!(
            p.end_us <= rec.end_us,
            "{} ({}): phase {} ends at {} after the trace ended at {}",
            rec.name,
            rec.status,
            p.name,
            p.end_us,
            rec.end_us
        );
        cursor = p.end_us;
    }
}

fn phase_names(rec: &TraceRecord) -> BTreeSet<&'static str> {
    rec.phases.iter().map(|p| p.name).collect()
}

/// Exactly one trace per answered request across the full status matrix,
/// including injected faults, and the ring survives an analyzer
/// round-trip (JSONL parse + Chrome Trace Event self-validation).
#[test]
fn every_response_yields_exactly_one_complete_trace() {
    let _gate = gate();
    fault::clear();
    trace::reset();
    let ctx = setup(61);
    let config = GatewayConfig {
        rate_per_sec: 0.5,
        burst: 2.0,
        max_body_bytes: 4096,
        ..GatewayConfig::default()
    };
    let gw = Gateway::spawn(config, ctx.state.clone()).expect("spawn");
    let addr = gw.addr();
    let q = ctx.study.eval_questions()[0].clone();
    let mut responses = 0u64;

    // Routing, schema, and admission statuses.
    for (status, resp) in [
        (200, client::get(addr, "/healthz", TIMEOUT)),
        (404, client::get(addr, "/nope", TIMEOUT)),
        (405, client::get(addr, "/v1/score", TIMEOUT)),
        (400, client::post_json(addr, "/v1/score", "not json", TIMEOUT)),
    ] {
        assert_eq!(resp.expect("response").status, status);
        responses += 1;
    }

    // 413: declared body larger than max_body_bytes.
    let huge = format!(
        "{{\"question\":\"{}\",\"options\":[\"a\",\"b\",\"c\",\"d\"]}}",
        "x".repeat(8192)
    );
    let resp = client::post_json(addr, "/v1/score", &huge, TIMEOUT).expect("413");
    assert_eq!(resp.status, 413, "{}", resp.body);
    responses += 1;

    // 429: exhaust the greedy client's burst of 2, then hit the limit.
    let body = score_body(&q, Some("greedy-client"));
    for i in 0..2 {
        let resp = client::post_json(addr, "/v1/score", &body, TIMEOUT).expect("burst");
        assert_eq!(resp.status, 200, "burst {i}: {}", resp.body);
        responses += 1;
    }
    let resp = client::post_json(addr, "/v1/score", &body, TIMEOUT).expect("limited");
    assert_eq!(resp.status, 429, "{}", resp.body);
    responses += 1;

    // gateway.slow_client: the handler answers 408 like a read timeout.
    fault::install(FaultPlan::single("gateway.slow_client", 1));
    let resp = client::get(addr, "/healthz", TIMEOUT).expect("slow client");
    assert_eq!(resp.status, 408, "{}", resp.body);
    assert!(fault::fired("gateway.slow_client"));
    responses += 1;
    fault::clear();

    // serve.cache_full: fires inside the engine; the request still
    // succeeds and still gets exactly one trace.
    fault::install(FaultPlan::single("serve.cache_full", 1));
    let other = score_body(&q, Some("cache-client"));
    let resp = client::post_json(addr, "/v1/score", &other, TIMEOUT).expect("cache_full");
    assert_eq!(resp.status, 200, "{}", resp.body);
    responses += 1;
    fault::clear();

    // gateway.accept_fail: the connection is dropped before a handler
    // exists — no HTTP response, but the gateway still records a
    // status-0 reject trace so the drop is attributable.
    fault::install(FaultPlan::single("gateway.accept_fail", 1));
    assert!(client::get(addr, "/healthz", Duration::from_secs(2)).is_err());
    assert!(fault::fired("gateway.accept_fail"));
    fault::clear();

    let stats = gw.shutdown();
    assert!(stats.drained_clean, "{stats:?}");

    // Exactly one finished trace per response, plus the accept_fail drop.
    let ring = trace::ring_snapshot();
    assert_eq!(
        ring.len() as u64,
        responses + 1,
        "expected one trace per response: {:?}",
        ring.iter().map(|r| (r.name.clone(), r.status)).collect::<Vec<_>>()
    );
    let ids: BTreeSet<u128> = ring.iter().map(|r| r.id.0).collect();
    assert_eq!(ids.len(), ring.len(), "duplicate trace ids in the ring");
    assert_eq!(trace::stats().inflight, 0, "traces left open after drain");

    let mut by_status: Vec<u16> = ring.iter().map(|r| r.status).collect();
    by_status.sort_unstable();
    assert_eq!(by_status, vec![0, 200, 200, 200, 200, 400, 404, 405, 408, 413, 429]);

    for rec in &ring {
        assert_well_formed(rec);
        match rec.status {
            200 if rec.name.starts_with("gateway./v1/") => {
                let names = phase_names(rec);
                for required in ["recv", "build", "queue_wait", "write"] {
                    assert!(names.contains(required), "{}: missing {required}: {names:?}", rec.name);
                }
            }
            0 => {
                assert!(rec.flags.fault, "accept_fail trace not flagged: {rec:?}");
                assert_eq!(rec.name, "gateway.reject");
            }
            _ => {}
        }
    }
    // The injected engine fault is attributed on the successful request.
    assert!(
        ring.iter().any(|r| r.status == 200
            && r.attrs.iter().any(|(k, v)| *k == "fault" && v == "serve.cache_full")),
        "serve.cache_full not attributed on any 200 trace"
    );

    // Analyzer round-trip: ring -> JSONL -> parse -> Chrome export.
    let path = std::env::temp_dir().join(format!("trace_completeness_{}.jsonl", std::process::id()));
    let written = trace::write_ring_jsonl(&path).expect("write ring jsonl");
    assert_eq!(written, ring.len());
    let text = std::fs::read_to_string(&path).expect("read jsonl back");
    let report = astro_trace::parse_jsonl(&text);
    assert!(report.malformed.is_empty(), "malformed lines: {:?}", report.malformed);
    assert_eq!(report.traces.len(), written, "JSONL round-trip lost traces");
    let chrome = astro_trace::chrome_trace_json(&report.traces);
    let events = astro_trace::validate_chrome_json(&chrome, &report.traces)
        .expect("chrome export validates");
    assert!(events >= report.traces.len());
    let _ = std::fs::remove_file(&path);
}

/// Deadline misses (504) and queue-full rejections (503) get traces
/// too: 504 deterministically via a 1ms deadline against a long batch
/// window, 503 by flooding a single-slot queue (bounded retries — the
/// flood outcome mix is timing-dependent, the per-response trace
/// invariant is not).
#[test]
fn pressure_rejections_are_traced() {
    let _gate = gate();
    fault::clear();
    trace::reset();
    let ctx = setup(67);
    let q = ctx.study.eval_questions()[0].clone();

    // 504: the request's 1ms deadline expires while the scheduler holds
    // the batch open for 100ms; dispatch answers it without touching the
    // engine and the trace carries the deadline flag.
    let config = GatewayConfig {
        deadline: Duration::from_millis(1),
        batch_window: Duration::from_millis(100),
        max_batch: 8,
        ..GatewayConfig::default()
    };
    let gw = Gateway::spawn(config, ctx.state.clone()).expect("spawn");
    let resp = client::post_json(gw.addr(), "/v1/score", &score_body(&q, None), TIMEOUT)
        .expect("deadline response");
    assert_eq!(resp.status, 504, "{}", resp.body);
    // The handler abandoned the reply channel at the deadline, so the
    // drain legitimately reports accepted > completed here — no
    // drained_clean assertion for this scenario.
    let _stats = gw.shutdown();
    let deadline_traces: Vec<TraceRecord> = trace::drain_ring()
        .into_iter()
        .filter(|r| r.status == 504)
        .collect();
    assert_eq!(deadline_traces.len(), 1, "expected exactly one 504 trace");
    assert!(deadline_traces[0].flags.deadline, "{:?}", deadline_traces[0]);
    assert_eq!(deadline_traces[0].keep, "deadline");
    assert_well_formed(&deadline_traces[0]);

    // 503: a single-slot queue under a concurrent flood. Engine latency
    // decides how many of the six land 503 vs 200/504, so retry the
    // flood a few times until a 503 shows up — every round still must
    // hold the one-trace-per-response property.
    trace::reset();
    let config = GatewayConfig {
        queue_capacity: 1,
        max_batch: 1,
        batch_window: Duration::ZERO,
        rate_per_sec: 1000.0,
        burst: 1000.0,
        ..GatewayConfig::default()
    };
    let gw = Gateway::spawn(config, ctx.state.clone()).expect("spawn");
    let addr = gw.addr();
    let mut total_responses = 0u64;
    let mut saw_503 = false;
    for _round in 0..8 {
        let statuses: Vec<u16> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..6)
                .map(|t| {
                    let body = score_body(&q, Some(&format!("flood-{t}")));
                    scope.spawn(move || {
                        client::post_json(addr, "/v1/score", &body, TIMEOUT)
                            .expect("flood response")
                            .status
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client")).collect()
        });
        for s in &statuses {
            assert!(matches!(s, 200 | 503 | 504), "unexpected status {s}");
        }
        total_responses += statuses.len() as u64;
        if statuses.contains(&503) {
            saw_503 = true;
            break;
        }
    }
    let stats = gw.shutdown();
    assert!(stats.drained_clean, "{stats:?}");
    assert!(saw_503, "queue-full 503 never observed across 8 flood rounds");
    let ring = trace::ring_snapshot();
    assert_eq!(ring.len() as u64, total_responses, "one trace per flood response");
    let ids: BTreeSet<u128> = ring.iter().map(|r| r.id.0).collect();
    assert_eq!(ids.len(), ring.len(), "duplicate trace ids in the ring");
    for rec in &ring {
        assert_well_formed(rec);
    }
    assert!(
        ring.iter().any(|r| r.status == 503),
        "503 response produced no trace"
    );
}
