//! Cross-crate telemetry integration: the JSONL sink must emit lines the
//! in-repo JSON parser (`astro_eval::json`) reads back, and the metric
//! registries must stay exact under concurrent load from the real
//! `astro_parallel::ThreadPool` workers.

use astro_eval::json::Json;
use astro_parallel::ThreadPool;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// The memory sink and the metric registries are process-global; hold
/// this while a test depends on exclusive sink ownership.
static SINK_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn jsonl_events_round_trip_through_eval_parser() {
    let _guard = SINK_LOCK.lock().unwrap();
    astro_telemetry::init_clock();
    astro_telemetry::sink::init_memory();

    let nasty = "quote\" backslash\\ newline\n tab\t cr\r unicode: 70B×α";
    astro_telemetry::Event::new("itest.nasty")
        .str_field("text", nasty)
        .f64_field("accuracy", 72.25)
        .f64_field("not_finite", f64::NAN)
        .u64_field("tokens", u64::MAX)
        .i64_field("delta", -42)
        .bool_field("ok", true)
        .emit();
    {
        let span = astro_telemetry::span!("itest.stage", tier = "S70b");
        span.record_f64("questions", 120.0);
    }
    astro_telemetry::info!("itest log line with \"quotes\"");

    let lines = astro_telemetry::sink::drain_memory();
    astro_telemetry::sink::close();
    assert!(lines.len() >= 2, "expected event + log lines, got {lines:?}");

    let mut saw_nasty = false;
    for line in &lines {
        let v = Json::parse(line)
            .unwrap_or_else(|e| panic!("sink line is not parseable JSON: {e}\n{line}"));
        assert!(v.get("event").is_some(), "every line carries an event name: {line}");
        if v.get("event").and_then(Json::as_str) == Some("itest.nasty") {
            saw_nasty = true;
            // The escaper keeps \" \\ \n \t \r exactly and maps other C0
            // bytes to spaces; this string round-trips verbatim.
            assert_eq!(v.get("text").and_then(Json::as_str), Some(nasty));
            assert_eq!(v.get("accuracy"), Some(&Json::Number(72.25)));
            assert_eq!(v.get("not_finite"), Some(&Json::Null));
            assert_eq!(v.get("delta"), Some(&Json::Number(-42.0)));
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        }
    }
    assert!(saw_nasty, "the itest.nasty event reached the sink: {lines:?}");
}

#[test]
fn counters_stay_exact_under_thread_pool_hammering() {
    const WORKERS: usize = 8;
    const JOBS: usize = 64;
    const INCS: u64 = 2_000;

    let pool = ThreadPool::new(WORKERS);
    let done = Arc::new(AtomicUsize::new(0));
    for job in 0..JOBS {
        let done = Arc::clone(&done);
        pool.execute(move || {
            let c = astro_telemetry::counter("itest.hammer");
            let h = astro_telemetry::histogram("itest.latency");
            let g = astro_telemetry::gauge("itest.inflight");
            g.add(1);
            for i in 0..INCS {
                c.inc();
                if i % 100 == 0 {
                    h.observe((job * 7 + i as usize) as f64);
                }
            }
            g.add(-1);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    pool.join();
    assert_eq!(done.load(Ordering::SeqCst), JOBS);

    assert_eq!(
        astro_telemetry::counter("itest.hammer").get(),
        JOBS as u64 * INCS,
        "no lost counter increments under contention"
    );
    let h = astro_telemetry::histogram("itest.latency");
    assert_eq!(h.count(), (JOBS as u64) * (INCS / 100));
    assert_eq!(astro_telemetry::gauge("itest.inflight").get(), 0);

    // The registry snapshot sees the same totals.
    let snap = astro_telemetry::metrics::snapshot();
    let (_, total) = snap
        .counters
        .iter()
        .find(|(n, _)| n == "itest.hammer")
        .expect("hammered counter appears in the snapshot");
    assert_eq!(*total, JOBS as u64 * INCS);
}
