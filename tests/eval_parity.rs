//! Differential parity: the astro-serve batched engine must be
//! **bit-identical** to the serial reference path.
//!
//! A performance rewrite of the scoring path can silently change
//! benchmark scores; this suite is the contract that it cannot. For the
//! CI-sized preset it asserts, against the serial uncached path:
//!
//! * token-method per-question predictions AND per-option scores
//!   (`f32`-exact, compared as bits) for both [`AnswerReadout`] variants,
//! * full-instruct raw generations, extraction stages and predictions,
//!
//! across prefix caching on/off and pool sizes 1/2/4. The determinism
//! argument the suite checks empirically is spelled out in
//! docs/SERVING.md.

use astromlab::eval::{
    instruct_method, token_method_outcomes, AnswerReadout, EvalModel, InstructEvalConfig,
    TokenEvalConfig, TokenOutcome,
};
use astromlab::model::{Params, Tier};
use astromlab::prng::Rng;
use astromlab::serve::{EngineConfig, EvalEngine, ScoreJob, ScoreReadout};
use astromlab::{Study, StudyConfig};

/// Every engine configuration the parity contract covers: prefix cache
/// off/on at pool sizes 1, 2 and 4.
fn engine_matrix() -> Vec<EngineConfig> {
    let mut out = Vec::new();
    for parallelism in [1usize, 2, 4] {
        for prefix_cache in [false, true] {
            out.push(EngineConfig {
                parallelism,
                prefix_cache,
                max_cache_bytes: 0,
            });
        }
    }
    out
}

/// Bitwise comparison for per-option scores (`==` on f32 would also
/// accept -0.0 vs 0.0 and reject NaN; scores must match *exactly*).
fn bits(scores: &[f32; 4]) -> [u32; 4] {
    [
        scores[0].to_bits(),
        scores[1].to_bits(),
        scores[2].to_bits(),
        scores[3].to_bits(),
    ]
}

fn assert_token_parity(reference: &[TokenOutcome], got: &[TokenOutcome], label: &str) {
    assert_eq!(reference.len(), got.len(), "{label}: length");
    for (i, (r, g)) in reference.iter().zip(got.iter()).enumerate() {
        assert_eq!(r.prediction, g.prediction, "{label}: q{i} prediction");
        assert_eq!(bits(&r.scores), bits(&g.scores), "{label}: q{i} scores {:?} vs {:?}", r.scores, g.scores);
        assert!(g.error.is_none(), "{label}: q{i} unexpected error {:?}", g.error);
    }
}

#[test]
fn token_method_engine_matches_serial_bitwise_both_readouts() {
    // The CI-sized preset; an untrained model exercises the identical
    // arithmetic (training state does not change the execution path).
    let study = Study::prepare(StudyConfig::smoke(11)).expect("prepare");
    let params = Params::init(study.model_config(Tier::S7b), &mut Rng::seed_from(1));
    let model = EvalModel {
        params: &params,
        tokenizer: &study.tokenizer,
    };
    let questions = study.eval_questions();
    for readout in [AnswerReadout::OptionValue, AnswerReadout::Letter] {
        let serial = TokenEvalConfig {
            readout,
            engine: EngineConfig::serial(),
            ..Default::default()
        };
        let reference = token_method_outcomes(&model, &questions, &study.mcq.exemplars, &serial);
        assert_eq!(reference.len(), questions.len());
        for cfg in engine_matrix() {
            let engined = TokenEvalConfig {
                readout,
                engine: cfg,
                ..Default::default()
            };
            let got = token_method_outcomes(&model, &questions, &study.mcq.exemplars, &engined);
            assert_token_parity(&reference, &got, &format!("{readout:?} {cfg:?}"));
        }
    }
}

#[test]
fn token_method_parity_holds_without_variant_detection_and_zero_shot() {
    let study = Study::prepare(StudyConfig::smoke(12)).expect("prepare");
    let params = Params::init(study.model_config(Tier::S8b), &mut Rng::seed_from(2));
    let model = EvalModel {
        params: &params,
        tokenizer: &study.tokenizer,
    };
    let questions = study.eval_questions();
    for (shots, detect) in [(0usize, false), (0, true), (2, false)] {
        let serial = TokenEvalConfig {
            shots,
            detect_variants: detect,
            engine: EngineConfig::serial(),
            ..Default::default()
        };
        let reference = token_method_outcomes(&model, &questions, &study.mcq.exemplars, &serial);
        for cfg in [EngineConfig::pooled_with(2), EngineConfig::pooled_with(4)] {
            let engined = TokenEvalConfig {
                shots,
                detect_variants: detect,
                engine: cfg,
                ..Default::default()
            };
            let got = token_method_outcomes(&model, &questions, &study.mcq.exemplars, &engined);
            assert_token_parity(&reference, &got, &format!("shots={shots} detect={detect} {cfg:?}"));
        }
    }
}

#[test]
fn instruct_method_engine_matches_serial_exactly() {
    let study = Study::prepare(StudyConfig::smoke(13)).expect("prepare");
    let params = Params::init(study.model_config(Tier::S7b), &mut Rng::seed_from(3));
    let model = EvalModel {
        params: &params,
        tokenizer: &study.tokenizer,
    };
    let questions = study.eval_questions();
    let serial_cfg = InstructEvalConfig {
        engine: EngineConfig::serial(),
        ..Default::default()
    };
    let mut rng = Rng::seed_from(77);
    let reference = instruct_method(&model, &questions, &serial_cfg, &mut rng);
    for cfg in engine_matrix() {
        let engined = InstructEvalConfig {
            engine: cfg,
            ..Default::default()
        };
        // The per-question substreams derive from the same root: parity
        // must hold with a fresh rng seeded identically.
        let mut rng = Rng::seed_from(77);
        let got = instruct_method(&model, &questions, &engined, &mut rng);
        assert_eq!(reference.len(), got.len());
        for (i, (r, g)) in reference.iter().zip(got.iter()).enumerate() {
            assert_eq!(r.raw, g.raw, "{cfg:?}: q{i} raw generation");
            assert_eq!(r.prediction, g.prediction, "{cfg:?}: q{i} prediction");
            assert_eq!(r.stage, g.stage, "{cfg:?}: q{i} extraction stage");
        }
    }
}

#[test]
fn prefix_cache_actually_fires_on_the_grouped_workload() {
    // Parity alone could be trivially satisfied by a cache that never
    // hits; assert the smoke workload (5 questions per article sharing a
    // two-shot preamble) produces real reuse.
    let study = Study::prepare(StudyConfig::smoke(11)).expect("prepare");
    let params = Params::init(study.model_config(Tier::S7b), &mut Rng::seed_from(1));
    let model = EvalModel {
        params: &params,
        tokenizer: &study.tokenizer,
    };
    let questions = study.eval_questions();
    let cfg = TokenEvalConfig::default();
    let engine = EvalEngine::new(EngineConfig::pooled_with(2), &params);
    let jobs: Vec<ScoreJob> = questions
        .iter()
        .map(|q| {
            let prompt_text =
                astromlab::mcq::prompts::token_method_prompt(q, &study.mcq.exemplars, cfg.shots);
            let mut tokens = model.tokenizer.encode_with_bounds(&prompt_text, false);
            let cap = params.cfg.max_seq.saturating_sub(12).max(1);
            if tokens.len() > cap {
                tokens.drain(0..tokens.len() - cap);
            }
            ScoreJob {
                prompt: tokens,
                group: Some(q.article as u64),
                readout: ScoreReadout::LogitGroups(vec![vec![0]]),
                trace: None,
            }
        })
        .collect();
    let n = jobs.len();
    let results = engine.score_batch(jobs);
    assert_eq!(results.len(), n);
    let stats = engine.cache_stats();
    assert!(stats.hits > 0, "no prefix-cache hits on a grouped workload: {stats:?}");
    assert!(stats.tokens_reused > 0, "{stats:?}");
    assert!(stats.hit_rate() > 0.0);
}

#[test]
fn overlong_prompt_fails_one_question_and_the_sweep_completes() {
    // The bugfix contract: a prompt that overflows the KV cache surfaces
    // as that job's SessionError::CacheFull; every other question in the
    // sweep still scores.
    let study = Study::prepare(StudyConfig::smoke(14)).expect("prepare");
    let params = Params::init(study.model_config(Tier::S7b), &mut Rng::seed_from(4));
    let engine = EvalEngine::new(EngineConfig::pooled_with(2), &params);
    let good = ScoreJob {
        prompt: vec![3, 1, 4, 1, 5],
        group: None,
        readout: ScoreReadout::LogitGroups(vec![vec![1], vec![2], vec![3], vec![4]]),
        trace: None,
    };
    let bad = ScoreJob {
        prompt: vec![7; params.cfg.max_seq + 10],
        group: None,
        readout: ScoreReadout::LogitGroups(vec![vec![1], vec![2], vec![3], vec![4]]),
        trace: None,
    };
    let results = engine.score_batch(vec![good.clone(), bad, good]);
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok(), "{:?}", results[0]);
    assert!(results[2].is_ok(), "{:?}", results[2]);
    let err = results[1].as_ref().expect_err("overlong prompt must fail");
    assert!(format!("{err}").contains("KV cache full"), "{err}");
    // The two identical good jobs must agree bitwise with each other.
    assert_eq!(results[0].as_ref().ok(), results[2].as_ref().ok());
}
