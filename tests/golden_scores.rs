//! Golden score regression: benchmark numbers may never drift unnoticed.
//!
//! The serving-engine rewrite (astro-serve) promises bit-identical
//! scores; this suite pins that promise to checked-in artifacts:
//!
//! * `goldens/figure1_fast_scores.golden` — the score CSV of the
//!   recorded `fast 42` run (the committed `figure1_fast.txt` /
//!   `table1_fast.txt` analysis in EXPERIMENTS.md). A tier-1 test keeps
//!   the committed artifact and the golden in lockstep; an `#[ignore]`d
//!   test recomputes the whole fast preset through the pooled engine
//!   (~1 h) for release validation.
//! * `goldens/figure1_smoke_seed11.golden` — recomputed from scratch on
//!   every tier-1 run through the engine-backed eval path, then diffed
//!   **exactly** (string equality, which for the `%.2f` CSV means the
//!   underlying scores are identical).
//!
//! Regenerate after an *intentional* scoring change with:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test --release --test golden_scores
//! ```
//!
//! and justify the diff in the PR description.

use astromlab::{Study, StudyConfig};

const SMOKE_GOLDEN: &str = "goldens/figure1_smoke_seed11.golden";
const FAST_GOLDEN: &str = "goldens/figure1_fast_scores.golden";

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(repo_path(rel))
        .unwrap_or_else(|e| panic!("missing {rel} ({e}); see module docs for regeneration"))
}

/// Diff two score CSVs line by line so a drift names the exact rows.
fn assert_scores_match(golden: &str, got: &str, label: &str) {
    if golden == got {
        return;
    }
    let mut drift = Vec::new();
    let (g_lines, n_lines): (Vec<&str>, Vec<&str>) =
        (golden.lines().collect(), got.lines().collect());
    for i in 0..g_lines.len().max(n_lines.len()) {
        let want = g_lines.get(i).copied().unwrap_or("<missing>");
        let have = n_lines.get(i).copied().unwrap_or("<missing>");
        if want != have {
            drift.push(format!("  line {}: golden `{want}` vs got `{have}`", i + 1));
        }
    }
    panic!(
        "{label}: benchmark scores drifted from the golden file.\n\
         If the change is intentional, regenerate with GOLDEN_REGEN=1 and\n\
         explain the drift in the PR. Differing lines:\n{}",
        drift.join("\n")
    );
}

#[test]
fn figure1_fast_artifact_matches_golden() {
    // The recorded artifact and the golden must never diverge: the golden
    // is the score section of the artifact, so editing one without the
    // other means the regression baseline no longer describes the
    // recorded run. The artifact itself is regenerated output (untracked
    // since the resilience PR), so a checkout without a local `figure1 --
    // fast` run has nothing to cross-check — skip rather than fail; the
    // golden stays guarded by the recompute tests either way.
    let Ok(artifact) = std::fs::read_to_string(repo_path("figure1_fast.txt")) else {
        eprintln!("figure1_fast.txt not present (regenerated output); skipping artifact cross-check");
        return;
    };
    let csv_start = artifact
        .find("model,method,score_percent")
        .expect("figure1_fast.txt lost its CSV section");
    assert_scores_match(
        &read(FAST_GOLDEN),
        &artifact[csv_start..],
        "figure1_fast.txt vs goldens/figure1_fast_scores.golden",
    );
}

#[test]
fn smoke_scores_recomputed_through_engine_match_golden() {
    // Full pipeline at smoke scale — train all models, evaluate through
    // the pooled prefix-cached engine (the smoke preset's default), and
    // require the rendered scores to be *exactly* the checked-in golden.
    let study = Study::prepare(StudyConfig::smoke(11)).expect("prepare");
    assert!(
        !study.config.eval_engine.is_serial_uncached(),
        "smoke preset must default to the pooled engine for this test \
         to guard the parallel path"
    );
    let result = study.run_table1().expect("run_table1");
    let got = &result.figure1_csv;
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(repo_path(SMOKE_GOLDEN), got).expect("write golden");
        return;
    }
    assert_scores_match(&read(SMOKE_GOLDEN), got, "smoke(11) figure1 CSV");
}

/// Release validation: recompute the recorded `fast 42` run through the
/// pooled engine and diff against the committed scores. Takes about an
/// hour single-threaded; run manually with `cargo test --release --test
/// golden_scores -- --ignored`.
#[test]
#[ignore = "fast preset takes ~1h; tier-1 covers smoke scale"]
fn fast_scores_recomputed_through_engine_match_recorded_artifact() {
    let study = Study::prepare(StudyConfig::fast(42)).expect("prepare");
    let result = study.run_table1().expect("run_table1");
    assert_scores_match(&read(FAST_GOLDEN), &result.figure1_csv, "fast(42) figure1 CSV");
}
