//! Poisoned-lock recovery: a panic mid-critical-section must degrade the
//! way the module docs promise, never deadlock or lose state.
//!
//! The `gateway.queue_poison` and `pool.pending_poison` fault sites panic
//! while still *holding* the respective mutex, after the critical section
//! finished its mutation and notify. The documented contract
//! (`gateway::queue`, `parallel::pool` module docs) is that every
//! critical section leaves the protected state structurally valid, so
//! later lock holders recover the poison with `PoisonError::into_inner`
//! and simply adopt the state:
//!
//! * the queue keeps every item that was accepted before the poison, and
//!   push/pop/close all keep working afterwards;
//! * the pool's `join` never hangs on the poisoned pending counter, and
//!   after the sole worker dies the pool degrades to inline execution
//!   (the disconnected-channel path), still never losing a job.
//!
//! Each scenario runs under a watchdog so a regression to deadlock fails
//! fast instead of hanging the suite. The fault registry is
//! process-global, so the tests serialise on `GATE`; this file is its own
//! test binary, so no other test can observe an armed plan.

use astro_gateway::queue::{BoundedQueue, Pop, PushError};
use astro_parallel::ThreadPool;
use astro_resilience::fault::{self, FaultPlan};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

static GATE: Mutex<()> = Mutex::new(());

fn locked() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Run `f` on a helper thread and fail loudly if it does not finish —
/// the degradation contract is "recover", and a deadlock must show up as
/// a test failure, not a hung suite.
fn assert_completes<F>(what: &str, f: F)
where
    F: FnOnce() + Send + 'static,
{
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        f();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(60))
        .unwrap_or_else(|_| panic!("{what} deadlocked instead of recovering"));
}

/// Live `astro-pool-*` worker threads in this process, counted via
/// `/proc/self/task`. The poisoned worker keeps its `Receiver` alive
/// until it finishes unwinding, so an `execute` racing its death could
/// still enqueue into the doomed channel; waiting for the named thread
/// to vanish makes the disconnected-channel probe deterministic.
fn pool_worker_threads() -> usize {
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return 0;
    };
    tasks
        .filter_map(|t| t.ok())
        .filter_map(|t| std::fs::read_to_string(t.path().join("comm")).ok())
        .filter(|comm| comm.trim_end().starts_with("astro-pool"))
        .count()
}

fn wait_for_worker_exit() {
    let deadline = Instant::now() + Duration::from_secs(30);
    while pool_worker_threads() > 0 {
        assert!(Instant::now() < deadline, "poisoned worker never exited");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn queue_poisoned_mid_push_keeps_items_and_operations() {
    let _g = locked();
    fault::install(FaultPlan::single("gateway.queue_poison", 2));

    let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
    assert!(q.try_push(1).is_ok());

    // Second push panics while holding the queue mutex — after the item
    // was appended, so the buffer stays valid under the poison.
    let poisoned = catch_unwind(AssertUnwindSafe(|| q.try_push(2)));
    assert!(poisoned.is_err(), "fault site must panic the pusher");
    assert!(fault::fired("gateway.queue_poison"));

    let q2 = Arc::clone(&q);
    assert_completes("poisoned queue", move || {
        // Depth sees both items: the poisoned critical section completed
        // its mutation before panicking.
        assert_eq!(q2.depth(), 2);
        // FIFO drain is intact, including the item pushed by the
        // panicking producer.
        assert!(matches!(q2.pop(None), Pop::Item(1)));
        assert!(matches!(q2.pop(None), Pop::Item(2)));
        // The queue still accepts, closes and drains after the poison.
        assert!(q2.try_push(3).is_ok());
        q2.close();
        match q2.try_push(4) {
            Err(PushError::Closed(item)) => assert_eq!(item, 4),
            Err(PushError::Full(_)) => panic!("expected Closed, got Full"),
            Ok(_) => panic!("expected Closed, got a grant"),
        }
        assert!(matches!(q2.pop(None), Pop::Item(3)));
        assert!(matches!(q2.pop(None), Pop::Closed));
    });

    fault::clear();
}

#[test]
fn pool_poisoned_pending_counter_never_hangs_join() {
    let _g = locked();
    fault::install(FaultPlan::single("pool.pending_poison", 1));

    let pool = Arc::new(ThreadPool::new(1));
    let done = Arc::new(AtomicUsize::new(0));
    let d = Arc::clone(&done);
    pool.execute(move || {
        d.fetch_add(1, Ordering::Relaxed);
    });

    // The sole worker panics while holding the pending lock — after the
    // decrement and the quiescence notify, so the counter it leaves
    // behind is valid and join can adopt it.
    assert_completes("pool join over poisoned pending lock", {
        let done = Arc::clone(&done);
        let pool = Arc::clone(&pool);
        move || {
            pool.join();
            assert_eq!(done.load(Ordering::Relaxed), 1, "job completed before the poison");
            assert_eq!(pool.queue_depth(), 0, "pending counter recovered as zero");
        }
    });
    assert!(fault::fired("pool.pending_poison"));

    // The worker dies with the panic, disconnecting the channel: the
    // documented degradation is inline execution, not job loss. Wait for
    // the thread to finish unwinding so the channel is provably
    // disconnected before probing the fallback.
    wait_for_worker_exit();
    let d = Arc::clone(&done);
    pool.execute(move || {
        d.fetch_add(1, Ordering::Relaxed);
    });
    assert_completes("degraded pool join", {
        let done = Arc::clone(&done);
        let pool = Arc::clone(&pool);
        move || {
            pool.join();
            assert_eq!(done.load(Ordering::Relaxed), 2, "inline fallback ran the job");
        }
    });

    fault::clear();
}
