//! End-to-end integration: one model line of the paper's pipeline —
//! world → tokenizer → benchmark → native pretrain → CPT → SFT → all
//! three evaluation methods — at smoke scale.

use astromlab::eval::Method;
use astromlab::model::Tier;
use astromlab::world::CorpusRecipe;
use astromlab::{Study, StudyConfig};

#[test]
fn one_model_line_end_to_end() {
    let study = Study::prepare(StudyConfig::smoke(101)).expect("prepare");

    // Pretrain the smallest native.
    let (native, pre_report) = study.pretrain_native(Tier::S7b).expect("pretrain");
    assert!(
        pre_report.tail_loss(2) < pre_report.losses[0].1,
        "pretraining must reduce loss: {:?}",
        pre_report.losses
    );

    // CPT on the AIC recipe.
    let (base, cpt_report) = study.cpt(&native, CorpusRecipe::Aic).expect("cpt");
    assert!(cpt_report.final_loss.is_finite());

    // SFT into an instruct model.
    let (instruct, sft_report) = study.sft(&base, "integration").expect("sft");
    assert!(sft_report.final_loss.is_finite());

    // All three methods produce valid scores.
    let tb = study.eval(&base, Method::TokenBase);
    let ti = study.eval(&instruct, Method::TokenInstruct);
    let fi = study.eval(&instruct, Method::FullInstruct);
    for (label, s) in [("token-base", &tb), ("token-instruct", &ti), ("full-instruct", &fi)] {
        assert_eq!(s.total, study.config.n_eval_questions, "{label}");
        assert!(s.correct <= s.total, "{label}");
    }
    // The full-instruct stage accounting must cover every question.
    assert_eq!(fi.stages.iter().sum::<usize>(), fi.total);
}

#[test]
fn cpt_stays_stable_on_astro_text() {
    let study = Study::prepare(StudyConfig::smoke(102)).expect("prepare");
    let (native, _) = study.pretrain_native(Tier::S7b).expect("pretrain");

    // At smoke scale (15 steps, paper-relation CPT LR) the loss barely
    // moves; the invariant is stability, not reduction — the reduction is
    // asserted at realistic scale by astro-train's perplexity tests and
    // the recorded experiment runs.
    let (_, report) = study.cpt(&native, CorpusRecipe::Aic).expect("cpt");
    assert!(report.final_loss.is_finite());
    assert!(
        report.tail_loss(2) <= report.losses[0].1 * 1.15,
        "CPT loss blew up: {:?}",
        report.losses
    );
}

#[test]
fn all_three_recipes_produce_distinct_models() {
    let study = Study::prepare(StudyConfig::smoke(103)).expect("prepare");
    let (native, _) = study.pretrain_native(Tier::S7b).expect("pretrain");
    let (abstract_m, _) = study.cpt(&native, CorpusRecipe::Abstract).expect("cpt");
    let (aic_m, _) = study.cpt(&native, CorpusRecipe::Aic).expect("cpt");
    let (summary_m, _) = study.cpt(&native, CorpusRecipe::Summary).expect("cpt");
    assert_ne!(abstract_m.data, aic_m.data);
    assert_ne!(aic_m.data, summary_m.data);
    assert_ne!(abstract_m.data, native.data);
}
