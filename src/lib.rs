//! Umbrella package for the AstroMLab 2 reproduction.
//!
//! The actual functionality lives in the workspace crates; this package
//! hosts the runnable `examples/` and cross-crate integration `tests/`.
//! See [`astromlab`] for the top-level API.

pub use astromlab;
